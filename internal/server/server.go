// Package server is the robustness layer of vliwbindd: a stdlib-only
// net/http JSON front end over the vliwbind facade that survives
// overload, faults, and shutdown without ever serving an uncertified
// answer. Its three jobs, in the order a request meets them:
//
//   - Admission control. A bounded queue (Workers running + QueueDepth
//     waiting) plus a moving (EWMA) estimate of per-bind cost predict
//     whether a request can meet its deadline; requests that cannot are
//     rejected immediately with 429 and a Retry-After hint instead of
//     being queued to die.
//
//   - Graceful degradation. Admitted jobs run under a compute budget.
//     Under queue pressure (or an explicit client budget) the budget is
//     shrunk below the full deadline, putting the bind on the audited
//     anytime path: the response is tagged "degraded" with the reason,
//     never silently worse and never uncertified.
//
//   - Fault containment. A worker panic (surfaced by the engine pool as
//     *bind.PanicError after its own capped retries) fails only the one
//     request; the server retries transient faults with exponential
//     backoff before answering 500. Every 200 carries a fresh
//     AuditResult certificate.
//
// Lifecycle: Drain stops admission (readyz flips to 503), lets
// in-flight jobs finish — force-degrading them at half the drain
// deadline — then compacts and flushes the store journal. The daemon
// in cmd/vliwbindd wires Drain to SIGTERM/SIGINT via internal/sigctx.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vliwbind"
	"vliwbind/internal/bind"
)

// Outcome classification: every response the server writes is exactly
// one of these, counted in /metrics and asserted by the chaos soak.
const (
	OutcomeOK       = "ok"       // 200, full-quality audited result
	OutcomeDegraded = "degraded" // 200, budget-truncated audited result
	OutcomeRejected = "rejected" // 429/503, load shed before any work
	OutcomeFailed   = "failed"   // 4xx/5xx, bad input or contained fault
)

// Config carries the daemon's tunables. The zero value of every field
// selects a production-reasonable default (see withDefaults).
type Config struct {
	// Workers bounds how many binds run concurrently. Zero defaults to
	// vliwbind's own parallelism source, GOMAXPROCS.
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a
	// worker slot beyond the Workers running ones. Zero defaults to
	// 4×Workers; admission capacity is Workers+QueueDepth.
	QueueDepth int
	// DefaultDeadline applies to requests that send no deadline_ms.
	// Zero defaults to 2s.
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines. Zero defaults to 30s.
	MaxDeadline time.Duration
	// MinBudget is the smallest compute budget worth admitting: a
	// request whose deadline cannot fit MinBudget of work after the
	// predicted queue wait is rejected up front, because not even the
	// B-INIT floor could be certified in time. Zero defaults to 10ms.
	MinBudget time.Duration
	// DegradePressure is the queue-fill fraction (0..1] beyond which
	// admitted jobs are budget-capped to the moving per-bind cost
	// estimate, trading tail quality for queue drainage. Zero defaults
	// to 0.5.
	DegradePressure float64
	// DrainDeadline bounds Drain: in-flight jobs get half of it to
	// finish naturally, then are cancelled onto the anytime path for
	// the rest. Zero defaults to 5s.
	DrainDeadline time.Duration
	// InitialCost seeds the EWMA per-bind cost estimate before any
	// bind has completed. Zero defaults to 25ms.
	InitialCost time.Duration
	// RequestRetries caps server-side re-runs of a bind that failed
	// transiently (recovered panic), on top of the engine's own
	// per-task retries. Zero defaults to 1; negative disables.
	RequestRetries int
	// Store, when non-nil, is the shared cross-request result tier;
	// repeated (isomorphic) requests are served from audited hits.
	// Drain compacts and flushes its journal.
	Store *vliwbind.ResultStore
	// BindOptions is the base engine configuration applied to every
	// request; per-request fields (Stats, Store, Observer, Hook) are
	// overlaid on a copy. Validated by New.
	BindOptions vliwbind.Options
	// Hook, when non-nil, is installed as BindOptions.Hook on every
	// request — the deterministic chaos seam (internal/faultinject).
	Hook func(point string)
	// Metrics, when non-nil, observes every bind and is served under
	// /metrics next to the server's own counters.
	Metrics *vliwbind.Metrics
	// Logf, when non-nil, receives one line per notable server event
	// (admission rejections, faults, drain progress).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = defaultWorkers()
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 2 * time.Second
	}
	if c.MaxDeadline == 0 {
		c.MaxDeadline = 30 * time.Second
	}
	if c.MinBudget == 0 {
		c.MinBudget = 10 * time.Millisecond
	}
	if c.DegradePressure == 0 {
		c.DegradePressure = 0.5
	}
	if c.DrainDeadline == 0 {
		c.DrainDeadline = 5 * time.Second
	}
	if c.InitialCost == 0 {
		c.InitialCost = 25 * time.Millisecond
	}
	if c.RequestRetries == 0 {
		c.RequestRetries = 1
	} else if c.RequestRetries < 0 {
		c.RequestRetries = 0
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Validate rejects configurations that would misbehave at runtime with
// descriptive errors, before the daemon starts listening.
func (c Config) Validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("server: Config.Workers is %d; want >= 0 (0 selects GOMAXPROCS)", c.Workers)
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("server: Config.QueueDepth is %d; want >= 0 (0 selects 4x workers)", c.QueueDepth)
	}
	if c.DegradePressure < 0 || c.DegradePressure > 1 {
		return fmt.Errorf("server: Config.DegradePressure is %g; want within [0,1] (0 selects 0.5)", c.DegradePressure)
	}
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"DefaultDeadline", c.DefaultDeadline}, {"MaxDeadline", c.MaxDeadline},
		{"MinBudget", c.MinBudget}, {"DrainDeadline", c.DrainDeadline},
		{"InitialCost", c.InitialCost},
	} {
		if d.v < 0 {
			return fmt.Errorf("server: Config.%s is %v; want >= 0 (0 selects the default)", d.name, d.v)
		}
	}
	if c.MaxDeadline != 0 && c.MinBudget != 0 && c.MinBudget > c.MaxDeadline {
		return fmt.Errorf("server: Config.MinBudget %v exceeds Config.MaxDeadline %v; no request could ever be admitted", c.MinBudget, c.MaxDeadline)
	}
	if err := c.BindOptions.Validate(); err != nil {
		return fmt.Errorf("server: Config.BindOptions: %w", err)
	}
	return nil
}

// Server is the binding service. It implements http.Handler; the
// daemon (or a test) supplies the listener. Create with New.
type Server struct {
	cfg Config
	mux *http.ServeMux

	sem chan struct{} // worker slots, capacity cfg.Workers

	// queued counts admitted-but-unfinished requests (running +
	// waiting); admission capacity is Workers+QueueDepth.
	queued atomic.Int64

	// admitMu orders inflight.Add against Drain's draining flip so a
	// request is never added after Drain began waiting.
	admitMu  sync.Mutex
	draining atomic.Bool
	inflight sync.WaitGroup

	// baseCtx is cancelled (with a cause) when Drain force-degrades
	// stragglers; every in-flight bind context is linked to it.
	baseCtx    context.Context
	baseCancel context.CancelCauseFunc

	// ewmaNs is the moving per-bind cost estimate in nanoseconds,
	// updated from completed full-quality binds only (degraded runs
	// measure their budget, not the workload).
	ewmaNs atomic.Int64

	ok, degraded, rejected, failed atomic.Int64
}

// errDraining is the cancellation cause installed when Drain cuts
// in-flight binds over to the anytime path.
var errDraining = errors.New("server draining")

// New validates cfg, applies defaults, and returns a ready Server.
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg,
		sem: make(chan struct{}, cfg.Workers),
	}
	s.baseCtx, s.baseCancel = context.WithCancelCause(context.Background())
	s.ewmaNs.Store(int64(cfg.InitialCost))

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/bind", s.handleBind)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s, nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Draining reports whether Drain has begun (admission is closed).
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain closes admission, waits for in-flight requests — giving them
// half the drain deadline to finish at full quality, then cancelling
// them onto the audited anytime path for the rest — and finally
// compacts and flushes the store journal. It returns an error only if
// in-flight work outlived the whole drain deadline or the journal
// could not be rewritten; either way admission stays closed.
func (s *Server) Drain() error {
	s.admitMu.Lock()
	first := !s.draining.Load()
	s.draining.Store(true)
	s.admitMu.Unlock()
	if !first {
		return errors.New("server: already draining")
	}
	s.cfg.Logf("drain: admission closed, waiting for %d in-flight request(s)", s.queued.Load())

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	grace := s.cfg.DrainDeadline / 2
	var drainErr error
	select {
	case <-done:
	case <-time.After(grace):
		s.cfg.Logf("drain: grace period over, degrading %d in-flight request(s)", s.queued.Load())
		s.baseCancel(errDraining)
		select {
		case <-done:
		case <-time.After(s.cfg.DrainDeadline - grace):
			drainErr = fmt.Errorf("server: %d request(s) still in flight after drain deadline %v", s.queued.Load(), s.cfg.DrainDeadline)
		}
	}
	s.baseCancel(errDraining) // release the watcher either way
	if s.cfg.Store != nil {
		cs, err := s.cfg.Store.Compact()
		if err != nil {
			if drainErr == nil {
				drainErr = fmt.Errorf("server: drain-time store compaction: %w", err)
			}
		} else {
			s.cfg.Logf("drain: store journal compacted to %d live entrie(s), %d dropped", cs.Live, cs.Dropped)
		}
	}
	if drainErr == nil {
		s.cfg.Logf("drain: complete")
	}
	return drainErr
}

// Counts returns the outcome counters: how many responses the server
// has classified ok / degraded / rejected / failed.
func (s *Server) Counts() map[string]int64 {
	return map[string]int64{
		OutcomeOK:       s.ok.Load(),
		OutcomeDegraded: s.degraded.Load(),
		OutcomeRejected: s.rejected.Load(),
		OutcomeFailed:   s.failed.Load(),
	}
}

func (s *Server) capacity() int64 { return int64(s.cfg.Workers + s.cfg.QueueDepth) }

func (s *Server) ewma() time.Duration { return time.Duration(s.ewmaNs.Load()) }

// observeCost folds a completed full-quality bind's wall time into the
// moving estimate (EWMA, alpha 0.3).
func (s *Server) observeCost(d time.Duration) {
	for {
		old := s.ewmaNs.Load()
		next := old + int64(float64(int64(d)-old)*0.3)
		if s.ewmaNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// predictWait estimates how long a new arrival would wait for a worker
// slot with depth admitted requests ahead of it.
func (s *Server) predictWait(depth int64) time.Duration {
	ahead := depth - int64(s.cfg.Workers) + 1
	if ahead < 0 {
		ahead = 0
	}
	return time.Duration(ahead) * s.ewma() / time.Duration(s.cfg.Workers)
}

// transientFault reports whether err is worth a server-side re-run: a
// contained worker panic (the engine already exhausted its per-task
// retries) or an error that self-identifies as transient.
func transientFault(err error) bool {
	var pe *bind.PanicError
	if errors.As(err, &pe) {
		return true
	}
	var tr interface{ Transient() bool }
	return errors.As(err, &tr) && tr.Transient()
}

// defaultWorkers mirrors the engine's default parallelism source.
func defaultWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case s.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	case s.queued.Load() >= s.capacity():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "saturated")
	default:
		fmt.Fprintln(w, "ready")
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	type serverMetrics struct {
		Outcomes   map[string]int64 `json:"outcomes"`
		QueueDepth int64            `json:"queue_depth"`
		Capacity   int64            `json:"capacity"`
		Workers    int              `json:"workers"`
		EWMAms     float64          `json:"ewma_ms"`
		Draining   bool             `json:"draining"`
	}
	out := struct {
		Server serverMetrics `json:"server"`
		Bind   any           `json:"bind,omitempty"`
	}{
		Server: serverMetrics{
			Outcomes:   s.Counts(),
			QueueDepth: s.queued.Load(),
			Capacity:   s.capacity(),
			Workers:    s.cfg.Workers,
			EWMAms:     float64(s.ewma()) / float64(time.Millisecond),
			Draining:   s.draining.Load(),
		},
	}
	if s.cfg.Metrics != nil {
		out.Bind = s.cfg.Metrics.Snapshot()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}
