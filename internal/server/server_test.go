package server

// Unit tests for the robustness machinery: admission control decisions,
// the degradation ladder, fault containment, drain, and the endpoint
// contract. The chaos soak in soak_test.go exercises the same machinery
// under concurrent adversarial load; these tests pin each behavior in
// isolation where a failure names the broken seam.

import (
	"encoding/json"

	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vliwbind"
	"vliwbind/internal/bind"
	"vliwbind/internal/faultinject"
	"vliwbind/internal/leakcheck"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func postBind(t *testing.T, s *Server, body string) (*httptest.ResponseRecorder, bindResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/bind", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var resp bindResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response %q is not JSON: %v", rec.Body.String(), err)
	}
	return rec, resp
}

const arfJob = `{"kernel":"ARF","dp":"[2,1|2,1]"}`

func TestBindOKServesAuditedResult(t *testing.T) {
	leakcheck.Check(t)
	s := newTestServer(t, Config{})
	rec, resp := postBind(t, s, arfJob)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if resp.Outcome != OutcomeOK {
		t.Fatalf("outcome = %q, want ok (body %s)", resp.Outcome, rec.Body)
	}
	if !resp.Audited {
		t.Error("200 response without an audit certificate")
	}
	if resp.Source != "search" {
		t.Errorf("source = %q, want search (no store configured)", resp.Source)
	}
	if resp.L <= 0 || len(resp.Binding) == 0 {
		t.Errorf("implausible solution: L=%d binding=%v", resp.L, resp.Binding)
	}
	if c := s.Counts(); c[OutcomeOK] != 1 || c[OutcomeDegraded]+c[OutcomeRejected]+c[OutcomeFailed] != 0 {
		t.Errorf("counts = %v, want exactly one ok", c)
	}
}

func TestBindServesStoreHitAudited(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	st, err := vliwbind.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := newTestServer(t, Config{Store: st})
	if _, resp := postBind(t, s, arfJob); resp.Source != "search" {
		t.Fatalf("cold request source = %q, want search", resp.Source)
	}
	_, resp := postBind(t, s, arfJob)
	if resp.Source != "store" {
		t.Fatalf("warm request source = %q, want store", resp.Source)
	}
	if resp.Outcome != OutcomeOK || !resp.Audited {
		t.Fatalf("store hit served outcome=%q audited=%v; hits must stay certified", resp.Outcome, resp.Audited)
	}
}

func TestAdmissionRejectsSubMinimumDeadline(t *testing.T) {
	leakcheck.Check(t)
	s := newTestServer(t, Config{})
	rec, resp := postBind(t, s, `{"kernel":"ARF","dp":"[2,1|2,1]","deadline_ms":1}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", rec.Code, rec.Body)
	}
	if resp.Outcome != OutcomeRejected {
		t.Fatalf("outcome = %q, want rejected", resp.Outcome)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("rejection without a Retry-After header")
	}
	if !strings.Contains(resp.Reason, "minimum certifiable budget") {
		t.Errorf("reason %q does not explain the minimum-budget rejection", resp.Reason)
	}
}

func TestAdmissionRejectsWhenQueueFull(t *testing.T) {
	leakcheck.Check(t)
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 2})
	s.queued.Add(s.capacity()) // simulate a full queue
	defer s.queued.Add(-s.capacity())
	rec, resp := postBind(t, s, arfJob)
	if rec.Code != http.StatusTooManyRequests || resp.Outcome != OutcomeRejected {
		t.Fatalf("status=%d outcome=%q, want 429 rejected", rec.Code, resp.Outcome)
	}
	if resp.Reason != "queue full" {
		t.Errorf("reason = %q, want queue full", resp.Reason)
	}
}

func TestAdmissionRejectsUnmeetableDeadline(t *testing.T) {
	leakcheck.Check(t)
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	// Three jobs ahead of us, each estimated at 1s, on one worker: a
	// 50ms deadline cannot be met and must be shed immediately.
	s.ewmaNs.Store(int64(time.Second))
	s.queued.Add(3)
	defer s.queued.Add(-3)
	rec, resp := postBind(t, s, `{"kernel":"ARF","dp":"[2,1|2,1]","deadline_ms":50}`)
	if rec.Code != http.StatusTooManyRequests || resp.Outcome != OutcomeRejected {
		t.Fatalf("status=%d outcome=%q, want 429 rejected (body %s)", rec.Code, resp.Outcome, rec.Body)
	}
	if resp.RetryAfterMS <= 0 {
		t.Errorf("retry_after_ms = %d, want a positive queue-drain hint", resp.RetryAfterMS)
	}
}

func TestClientBudgetDegradesButStaysAudited(t *testing.T) {
	leakcheck.Check(t)
	s := newTestServer(t, Config{})
	// DCT-DIT-2's improvement phase runs far past 60ms; its B-INIT
	// floor completes well within it. The budget must surface as a
	// degraded-but-audited 200, not an error.
	rec, resp := postBind(t, s, `{"kernel":"DCT-DIT-2","dp":"[2,1|2,1]","deadline_ms":10000,"budget_ms":60}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if resp.Outcome != OutcomeDegraded {
		t.Fatalf("outcome = %q, want degraded (body %s)", resp.Outcome, rec.Body)
	}
	if !resp.Audited {
		t.Error("degraded response served without an audit certificate")
	}
	if !strings.Contains(resp.Reason, "client budget") {
		t.Errorf("reason %q does not name the client budget", resp.Reason)
	}
	if resp.L <= 0 || len(resp.Binding) == 0 {
		t.Errorf("degraded response carries no solution: L=%d binding=%v", resp.L, resp.Binding)
	}
}

func TestPanicContainedAndRetriedServerSide(t *testing.T) {
	leakcheck.Check(t)
	// Engine-level retries off (-1): the injected panic escapes the
	// pool as a *bind.PanicError, and only the server-side re-run
	// heals it.
	inj := faultinject.New(faultinject.Fault{Point: bind.HookCompute, Hit: 1, Kind: faultinject.Panic})
	s := newTestServer(t, Config{
		Hook:        inj.At,
		BindOptions: vliwbind.Options{TaskRetries: -1, Parallelism: 2},
	})
	rec, resp := postBind(t, s, arfJob)
	if rec.Code != http.StatusOK || resp.Outcome != OutcomeOK {
		t.Fatalf("status=%d outcome=%q, want the server-side retry to heal the panic (body %s)", rec.Code, resp.Outcome, rec.Body)
	}
	if inj.Fired() != 1 {
		t.Fatalf("injector fired %d faults, want 1", inj.Fired())
	}
}

func TestPanicFailsOnlyThatRequest(t *testing.T) {
	leakcheck.Check(t)
	// Every compute of the first request panics; with server retries
	// disabled the request must fail 5xx — and the next request on the
	// same server must succeed untouched.
	inj := faultinject.New(
		faultinject.Fault{Point: bind.HookCompute, Hit: 1, Kind: faultinject.Panic},
		faultinject.Fault{Point: bind.HookCompute, Hit: 2, Kind: faultinject.Panic},
	)
	s := newTestServer(t, Config{
		Hook:           inj.At,
		RequestRetries: -1,
		BindOptions:    vliwbind.Options{TaskRetries: -1, Parallelism: 2},
	})
	rec, resp := postBind(t, s, arfJob)
	if rec.Code != http.StatusInternalServerError || resp.Outcome != OutcomeFailed {
		t.Fatalf("status=%d outcome=%q, want 500 failed (body %s)", rec.Code, resp.Outcome, rec.Body)
	}
	if !strings.Contains(resp.Error, "panic") {
		t.Errorf("error %q does not surface the contained panic", resp.Error)
	}
	rec, resp = postBind(t, s, arfJob)
	if rec.Code != http.StatusOK || resp.Outcome != OutcomeOK {
		t.Fatalf("request after a contained panic: status=%d outcome=%q, want 200 ok", rec.Code, resp.Outcome)
	}
	if c := s.Counts(); c[OutcomeFailed] != 1 || c[OutcomeOK] != 1 {
		t.Errorf("counts = %v, want one failed and one ok", c)
	}
}

func TestBadRequestsFailWithDescriptiveErrors(t *testing.T) {
	leakcheck.Check(t)
	s := newTestServer(t, Config{})
	cases := []struct {
		name, body, want string
	}{
		{"not json", `{`, "decode request"},
		{"unknown field", `{"kernel":"ARF","dp":"[2,1]","bogus":1}`, "bogus"},
		{"no graph", `{"dp":"[2,1|2,1]"}`, "neither kernel nor dfg"},
		{"both graphs", `{"kernel":"ARF","dfg":"x","dp":"[2,1|2,1]"}`, "exactly one"},
		{"unknown kernel", `{"kernel":"NOPE","dp":"[2,1|2,1]"}`, "NOPE"},
		{"bad dfg", `{"dfg":"not a graph","dp":"[2,1|2,1]"}`, "parse dfg"},
		{"no dp", `{"kernel":"ARF"}`, "missing the datapath"},
		{"bad dp", `{"kernel":"ARF","dp":"[[["}`, "parse datapath"},
		{"bad algo", `{"kernel":"ARF","dp":"[2,1|2,1]","algo":"magic"}`, "magic"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec, resp := postBind(t, s, c.body)
			if rec.Code != http.StatusBadRequest || resp.Outcome != OutcomeFailed {
				t.Fatalf("status=%d outcome=%q, want 400 failed", rec.Code, resp.Outcome)
			}
			if !strings.Contains(resp.Error, c.want) {
				t.Errorf("error %q does not mention %q", resp.Error, c.want)
			}
		})
	}
	req := httptest.NewRequest(http.MethodGet, "/bind", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /bind status = %d, want 405", rec.Code)
	}
}

func TestDrainDegradesInFlightAndCompactsStore(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	st, err := vliwbind.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Slow every B-ITER round so the job genuinely outlives the drain
	// grace period and must be force-degraded.
	inj := faultinject.New(faultinject.Fault{Point: bind.HookIterRound, Kind: faultinject.Delay, Delay: 300 * time.Millisecond})
	s := newTestServer(t, Config{Store: st, DrainDeadline: 2 * time.Second, Hook: inj.At})

	type reply struct {
		code int
		resp bindResponse
	}
	got := make(chan reply, 1)
	go func() {
		req := httptest.NewRequest(http.MethodPost, "/bind",
			strings.NewReader(`{"kernel":"DCT-DIT-2","dp":"[2,1|2,1]","deadline_ms":30000}`))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		var resp bindResponse
		json.Unmarshal(rec.Body.Bytes(), &resp)
		got <- reply{rec.Code, resp}
	}()
	// Wait until the slow bind is actually in flight.
	for i := 0; s.queued.Load() == 0; i++ {
		if i > 2000 {
			t.Fatal("slow request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let it pass the B-INIT floor

	start := time.Now()
	if err := s.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Errorf("drain took %v, past the 2s drain deadline", waited)
	}
	r := <-got
	if r.code != http.StatusOK || r.resp.Outcome != OutcomeDegraded {
		t.Fatalf("in-flight request during drain: status=%d outcome=%q, want 200 degraded", r.code, r.resp.Outcome)
	}
	if !r.resp.Audited {
		t.Error("drain-degraded response served without an audit certificate")
	}

	// Admission is closed: new jobs are shed, readiness is off,
	// liveness stays on.
	rec, resp := postBind(t, s, arfJob)
	if rec.Code != http.StatusServiceUnavailable || resp.Outcome != OutcomeRejected {
		t.Errorf("post-drain request: status=%d outcome=%q, want 503 rejected", rec.Code, resp.Outcome)
	}
	for path, want := range map[string]int{"/healthz": 200, "/readyz": 503} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != want {
			t.Errorf("%s after drain = %d, want %d", path, rec.Code, want)
		}
	}

	// The journal was flushed and compacted: it exists and replays.
	if _, err := os.Stat(filepath.Join(dir, "results.jsonl")); err != nil {
		t.Errorf("store journal missing after drain: %v", err)
	}
	if err := s.Drain(); err == nil {
		t.Error("second Drain did not report already draining")
	}
}

func TestReadyzSaturated(t *testing.T) {
	leakcheck.Check(t)
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("idle readyz = %d, want 200", rec.Code)
	}
	s.queued.Add(s.capacity())
	defer s.queued.Add(-s.capacity())
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "saturated") {
		t.Fatalf("saturated readyz = %d %q, want 503 saturated", rec.Code, rec.Body)
	}
}

func TestMetricsEndpointReportsOutcomesAndBindCounters(t *testing.T) {
	leakcheck.Check(t)
	m := vliwbind.NewMetrics()
	s := newTestServer(t, Config{Metrics: m})
	postBind(t, s, arfJob)
	postBind(t, s, `{"kernel":"ARF","dp":"[2,1|2,1]","deadline_ms":1}`)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	var out struct {
		Server struct {
			Outcomes map[string]int64 `json:"outcomes"`
			EWMAms   float64          `json:"ewma_ms"`
			Capacity int64            `json:"capacity"`
		} `json:"server"`
		Bind struct {
			Counters map[string]int64 `json:"Counters"`
		} `json:"bind"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("metrics is not JSON: %v\n%s", err, rec.Body)
	}
	if out.Server.Outcomes[OutcomeOK] != 1 || out.Server.Outcomes[OutcomeRejected] != 1 {
		t.Errorf("outcomes = %v, want one ok and one rejected", out.Server.Outcomes)
	}
	if out.Server.EWMAms <= 0 || out.Server.Capacity <= 0 {
		t.Errorf("implausible server metrics: %+v", out.Server)
	}
	if len(out.Bind.Counters) == 0 {
		t.Error("bind metrics snapshot has no counters despite an observed bind")
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"negative workers", Config{Workers: -1}, "Workers"},
		{"negative queue", Config{QueueDepth: -1}, "QueueDepth"},
		{"pressure above one", Config{DegradePressure: 1.5}, "DegradePressure"},
		{"negative deadline", Config{DefaultDeadline: -time.Second}, "DefaultDeadline"},
		{"min budget above max deadline", Config{MinBudget: time.Minute, MaxDeadline: time.Second}, "MinBudget"},
		{"invalid bind options", Config{BindOptions: vliwbind.Options{Parallelism: -2}}, "Parallelism"},
		{"zero-value store", Config{BindOptions: vliwbind.Options{Store: new(vliwbind.ResultStore)}}, "Store"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(c.cfg)
			if err == nil {
				t.Fatal("New accepted an invalid config")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not name %q", err, c.want)
			}
		})
	}
	if _, err := New(Config{}); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

func TestHealthzAlwaysLive(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", rec.Code)
	}
}

// TestEWMAConverges pins the cost estimator the admission decisions
// lean on.
func TestEWMAConverges(t *testing.T) {
	s := newTestServer(t, Config{InitialCost: 100 * time.Millisecond})
	for i := 0; i < 40; i++ {
		s.observeCost(10 * time.Millisecond)
	}
	if got := s.ewma(); got > 12*time.Millisecond || got < 9*time.Millisecond {
		t.Fatalf("ewma after 40 10ms observations = %v, want ~10ms", got)
	}
}
