package server

// The chaos soak: the acceptance test for the daemon's robustness
// story. Thousands of concurrent requests — a mix of full binds,
// explicit-budget degraded jobs, unmeetable deadlines, malformed
// inputs, and mid-flight client cancellations — run against one server
// with deterministic panics and delays injected into the engine's
// seams. The assertions are the ISSUE's acceptance criteria verbatim:
// zero goroutine leaks, zero uncertified 200s, every response exactly
// one of {ok, degraded, rejected, failed}, and a monotone drain that
// finishes within the drain deadline with the journal flushed and
// compacted.

import (
	"bytes"
	"context"
	"encoding/json"

	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vliwbind"
	"vliwbind/internal/bind"
	"vliwbind/internal/faultinject"
	"vliwbind/internal/leakcheck"
)

// soakJob returns the i-th request body and, when positive, a client
// timeout that cancels the request mid-flight. The mix is a function
// of the index only, so every run replays the same traffic.
func soakJob(i int) (body string, clientTimeout time.Duration) {
	switch i % 10 {
	case 3:
		// Malformed: unknown kernel → 400 failed.
		return `{"kernel":"NoSuchKernel","dp":"[2,1|2,1]"}`, 0
	case 5:
		// Explicit budget far below DCT-DIT-2's improvement phase →
		// 200 degraded (audited anytime result).
		return `{"kernel":"DCT-DIT-2","dp":"[2,1|2,1]","deadline_ms":20000,"budget_ms":60}`, 0
	case 7:
		// Deadline below the minimum certifiable budget → 429 rejected.
		return `{"kernel":"EWF","dp":"[2,1|2,1]","deadline_ms":1}`, 0
	case 9:
		// Client gives up mid-flight: whatever the server answers must
		// still be classified, audited if 200, and leak-free.
		return `{"kernel":"ARF","dp":"[2,1|2,1]","deadline_ms":10000}`, 2 * time.Millisecond
	case 1:
		return `{"kernel":"EWF","dp":"[2,1|2,1]","deadline_ms":10000}`, 0
	case 2:
		return `{"kernel":"ARF","dp":"[2,1|2,1]","topology":"ring","deadline_ms":10000}`, 0
	default:
		return `{"kernel":"ARF","dp":"[2,1|2,1]","deadline_ms":10000}`, 0
	}
}

// chaosInjector builds a deterministic fault schedule spread across the
// whole soak: panics and delays at the engine's hot seams, with hit
// counts drawn far enough out that faults keep landing throughout the
// run rather than only in the first request.
func chaosInjector() *faultinject.Injector {
	rng := rand.New(rand.NewSource(7))
	points := []string{bind.HookCompute, bind.HookEvaluate, bind.HookPoolTask, bind.HookIterRound, bind.HookCacheInsert}
	var faults []faultinject.Fault
	for i := 0; i < 300; i++ {
		f := faultinject.Fault{
			Point: points[rng.Intn(len(points))],
			Hit:   1 + rng.Int63n(200000),
			Kind:  faultinject.Kind(rng.Intn(2)), // Panic or Delay
		}
		if f.Kind == faultinject.Delay {
			f.Delay = time.Duration(rng.Intn(2000)) * time.Microsecond
		}
		faults = append(faults, f)
	}
	return faultinject.New(faults...)
}

func TestChaosSoak(t *testing.T) {
	leakcheck.Check(t)
	total := 1000
	if testing.Short() {
		total = 200
	}
	const clients = 8

	dir := t.TempDir()
	st, err := vliwbind.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	inj := chaosInjector()
	metrics := vliwbind.NewMetrics()
	s, err := New(Config{
		Workers:       4,
		QueueDepth:    16,
		Store:         st,
		Metrics:       metrics,
		Hook:          inj.At,
		DrainDeadline: 10 * time.Second,
		BindOptions:   vliwbind.Options{Parallelism: 2},
	})
	if err != nil {
		t.Fatal(err)
	}

	var clientCounts [4]atomic.Int64 // ok, degraded, rejected, failed as seen by clients
	index := map[string]int{OutcomeOK: 0, OutcomeDegraded: 1, OutcomeRejected: 2, OutcomeFailed: 3}
	var failures atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < total; i += clients {
				body, clientTimeout := soakJob(i)
				ctx := context.Background()
				cancel := func() {}
				if clientTimeout > 0 {
					ctx, cancel = context.WithTimeout(ctx, clientTimeout)
				}
				req := httptest.NewRequest(http.MethodPost, "/bind", strings.NewReader(body)).WithContext(ctx)
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				cancel()

				var resp bindResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					t.Errorf("request %d: response is not JSON: %v\n%s", i, err, rec.Body)
					failures.Add(1)
					continue
				}
				slot, known := index[resp.Outcome]
				if !known {
					t.Errorf("request %d: outcome %q is not one of ok/degraded/rejected/failed", i, resp.Outcome)
					failures.Add(1)
					continue
				}
				clientCounts[slot].Add(1)
				if rec.Code == http.StatusOK {
					// The uncertified-response check: every 200 carries a
					// response-time audit certificate and a solution.
					if !resp.Audited {
						t.Errorf("request %d: 200 without audit certificate: %s", i, rec.Body)
						failures.Add(1)
					}
					if resp.L <= 0 || len(resp.Binding) == 0 {
						t.Errorf("request %d: 200 without a solution: %s", i, rec.Body)
						failures.Add(1)
					}
					if resp.Outcome != OutcomeOK && resp.Outcome != OutcomeDegraded {
						t.Errorf("request %d: 200 classified %q", i, resp.Outcome)
					}
				} else if resp.Outcome == OutcomeOK || resp.Outcome == OutcomeDegraded {
					t.Errorf("request %d: status %d classified %q", i, rec.Code, resp.Outcome)
				}
			}
		}(c)
	}
	wg.Wait()

	// Reconciliation: the server classified every request exactly once,
	// and exactly as the clients saw it.
	server := s.Counts()
	var serverTotal int64
	for _, v := range server {
		serverTotal += v
	}
	if serverTotal != int64(total) {
		t.Errorf("server classified %d responses, want %d: %v", serverTotal, total, server)
	}
	for outcome, slot := range index {
		if got, want := server[outcome], clientCounts[slot].Load(); got != want {
			t.Errorf("outcome %s: server counted %d, clients saw %d", outcome, got, want)
		}
	}
	// The deterministic mix guarantees a floor for each class.
	if server[OutcomeDegraded] == 0 {
		t.Error("soak produced no degraded responses; the budget path never ran")
	}
	if server[OutcomeRejected] < int64(total/10) {
		t.Errorf("soak produced %d rejections, want >= %d (every index%%10==7 job)", server[OutcomeRejected], total/10)
	}
	if server[OutcomeFailed] < int64(total/10) {
		t.Errorf("soak produced %d failures, want >= %d (every index%%10==3 job)", server[OutcomeFailed], total/10)
	}
	if server[OutcomeOK] == 0 {
		t.Error("soak produced no ok responses")
	}
	if inj.Fired() == 0 {
		t.Error("chaos injector never fired; the soak ran without faults")
	}
	t.Logf("soak: %d requests → %v, %d faults injected, ewma %v", total, server, inj.Fired(), s.ewma())

	// Monotone drain: completes within the deadline, closes admission
	// permanently, flushes and compacts the journal.
	start := time.Now()
	if err := s.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Errorf("drain took %v, past the drain deadline", waited)
	}
	for i := 0; i < 2; i++ {
		req := httptest.NewRequest(http.MethodPost, "/bind", strings.NewReader(`{"kernel":"ARF","dp":"[2,1|2,1]"}`))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("post-drain request %d: status %d, want 503 (drain must be monotone)", i, rec.Code)
		}
	}

	// Journal flushed + compacted: exactly one record per live entry,
	// and a fresh replay agrees with the in-memory store.
	raw, err := os.ReadFile(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		t.Fatalf("journal missing after drain: %v", err)
	}
	if lines := bytes.Count(raw, []byte("\n")); lines != st.Len() {
		t.Errorf("compacted journal has %d records for %d live entries", lines, st.Len())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := vliwbind.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if stats := re.OpenStats(); stats.Skipped != 0 || stats.Tombstoned != 0 {
		t.Errorf("compacted journal replayed with %+v, want all-clean records", stats)
	}
	if failures.Load() > 0 {
		t.Fatalf("%d soak invariant violations (see errors above)", failures.Load())
	}
}
