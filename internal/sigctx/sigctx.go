// Package sigctx converts OS termination signals into context
// cancellation with two-signal escalation: the first SIGINT/SIGTERM
// cancels the returned context (so the audited anytime/degraded path
// runs and partial results print), a second signal hard-exits. It is
// the one place the repo's CLIs and the vliwbindd daemon agree on what
// Ctrl-C means, and it is testable because the signal source and the
// exit function are both injected.
package sigctx

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// ExitCodeSignal is the conventional exit status for "killed by
// signal" (128+SIGINT); the hard-exit path uses it so a supervisor can
// tell a forced kill from a graceful drain's exit 0.
const ExitCodeSignal = 130

// Cause is the cancellation cause installed on the context when a
// signal arrives, so callers distinguishing user interruption from a
// deadline can errors.As on context.Cause(ctx).
type Cause struct{ Sig os.Signal }

func (c *Cause) Error() string {
	return fmt.Sprintf("interrupted by %v (send again to force exit)", c.Sig)
}

// Notify returns a channel subscribed to SIGINT and SIGTERM, sized so
// the runtime never drops the escalation signal. Production callers
// pass it to WithSignals; tests inject their own channel instead.
func Notify() chan os.Signal {
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	return sigc
}

// WithSignals derives a context that is cancelled (with a *Cause) when
// the first signal arrives on sigc, and calls hardExit(ExitCodeSignal)
// on the second. A nil hardExit defaults to os.Exit. The returned stop
// function releases the watcher goroutine; callers must invoke it
// (typically via defer) or the goroutine outlives the run — the repo's
// leakcheck tests enforce this.
func WithSignals(parent context.Context, sigc <-chan os.Signal, hardExit func(code int)) (context.Context, func()) {
	if hardExit == nil {
		hardExit = os.Exit
	}
	ctx, cancel := context.WithCancelCause(parent)
	done := make(chan struct{})
	go func() {
		// Signals are counted independently of the parent's state: even
		// if the parent cancelled first (a deadline, say), it still
		// takes two signals to force an exit, so a single Ctrl-C during
		// a graceful wind-down stays graceful.
		select {
		case sig := <-sigc:
			cancel(&Cause{Sig: sig})
		case <-done:
			cancel(context.Canceled)
			return
		}
		select {
		case <-sigc:
			hardExit(ExitCodeSignal)
		case <-done:
		}
	}()
	return ctx, func() { close(done) }
}
