package sigctx

import (
	"context"
	"errors"
	"os"
	"syscall"
	"testing"
	"time"

	"vliwbind/internal/leakcheck"
)

func TestFirstSignalCancelsWithCause(t *testing.T) {
	leakcheck.Check(t)
	sigc := make(chan os.Signal, 2)
	ctx, stop := WithSignals(context.Background(), sigc, func(int) { t.Fatal("hard exit on first signal") })
	defer stop()
	sigc <- syscall.SIGTERM
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("context not cancelled after first signal")
	}
	var cause *Cause
	if !errors.As(context.Cause(ctx), &cause) {
		t.Fatalf("cause = %v, want *sigctx.Cause", context.Cause(ctx))
	}
	if cause.Sig != syscall.SIGTERM {
		t.Fatalf("cause signal = %v, want SIGTERM", cause.Sig)
	}
}

func TestSecondSignalHardExits(t *testing.T) {
	leakcheck.Check(t)
	sigc := make(chan os.Signal, 2)
	exited := make(chan int, 1)
	ctx, stop := WithSignals(context.Background(), sigc, func(code int) { exited <- code })
	defer stop()
	sigc <- syscall.SIGINT
	<-ctx.Done()
	sigc <- syscall.SIGINT
	select {
	case code := <-exited:
		if code != ExitCodeSignal {
			t.Fatalf("hard exit code = %d, want %d", code, ExitCodeSignal)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("second signal did not hard-exit")
	}
}

func TestStopReleasesWatcherWithoutSignal(t *testing.T) {
	leakcheck.Check(t)
	sigc := make(chan os.Signal, 2)
	ctx, stop := WithSignals(context.Background(), sigc, nil)
	stop()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("stop did not release the derived context")
	}
	// leakcheck verifies the watcher goroutine is gone.
}

func TestParentCancellationStillTakesTwoSignals(t *testing.T) {
	leakcheck.Check(t)
	parent, cancel := context.WithCancel(context.Background())
	sigc := make(chan os.Signal, 2)
	exited := make(chan int, 1)
	ctx, stop := WithSignals(parent, sigc, func(code int) { exited <- code })
	defer stop()
	cancel()
	<-ctx.Done()
	// A parent cancellation does not count as the first signal: one
	// Ctrl-C during a graceful wind-down must stay graceful.
	sigc <- syscall.SIGTERM
	sigc <- syscall.SIGTERM
	select {
	case <-exited:
	case <-time.After(2 * time.Second):
		t.Fatal("two signals after parent cancellation did not escalate")
	}
}
