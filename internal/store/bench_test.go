package store

import (
	"testing"

	"vliwbind/internal/kernels"
	"vliwbind/internal/machine"
)

// BenchmarkCanonicalize prices the request-hashing side of a store
// lookup on the largest checked-in kernel: WL refinement, canonical
// ordering, serialization, and the SHA-256.
func BenchmarkCanonicalize(b *testing.B) {
	g := kernels.DCTDIT2()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Canonicalize(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreResultKey prices key derivation given a canonical form.
func BenchmarkStoreResultKey(b *testing.B) {
	g := kernels.DCTDIT2()
	c, err := Canonicalize(g)
	if err != nil {
		b.Fatal(err)
	}
	dp, err := machine.ParseSpec("[2,1|2,1]")
	if err != nil {
		b.Fatal(err)
	}
	extra := []byte("bindopts/v1 benchmark")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ResultKey(KindIter, c, dp, extra)
	}
}

// BenchmarkStoreLookup is the steady-state hit path of the store proper:
// a Get on a resident key, including the LRU move-to-front. This is the
// zero-allocation gate in BENCH_pr8.json — the map probe and the
// intrusive list relink allocate nothing.
func BenchmarkStoreLookup(b *testing.B) {
	s := NewMemory(0)
	k := testKey("steady")
	s.Put(Entry{Key: k, Kind: KindIter, Binding: make([]int, 48), L: 17, M: 6})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Get(k) == nil {
			b.Fatal("entry vanished")
		}
	}
}
