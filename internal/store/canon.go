// Canonical graph hashing. The result store is content-addressed: two
// requests must share a key exactly when their answers are
// interchangeable, so the key cannot depend on anything a renaming or a
// reordering of the same computation changes — node labels, node
// creation order, input declaration order, or the operand order of
// commutative operations. Canonicalize therefore computes a canonical
// form in two steps:
//
//  1. Weisfeiler–Lehman color refinement. Every node starts from a color
//     derived only from its local shape (operation type, immediate bits,
//     live-out flag) and is iteratively re-hashed from its operand colors
//     (in operand order; sorted for commutative operations) and the
//     sorted multiset of its consumer colors. External inputs get colors
//     of their own, refined from their consumers. Refinement stops when
//     the number of distinct colors stabilizes.
//  2. A canonical topological order: Kahn's algorithm, always emitting
//     the ready node with the smallest (final color, node ID) pair. Two
//     ready nodes share a final color only when the refinement could not
//     tell them apart — which for the DAGs at hand almost always means
//     they are automorphic images of each other, so either choice yields
//     the same canonical serialization.
//
// The canonical serialization lists the nodes in that order, each as
// (op, output flag, immediate bits, operand references), where a node
// operand is referenced by its canonical position and an external input
// by a canonical input id assigned at first use. Commutative operands
// are emitted in canonical-reference order. Hash is the SHA-256 of those
// bytes.
//
// Soundness does not rest on the refinement: equal serializations imply
// a position-by-position correspondence that preserves operations,
// immediates, output flags and dataflow edges — a graph isomorphism — so
// a binding transplanted through Order is always a valid binding of the
// requesting graph. A refinement collision can only make two isomorphic
// graphs serialize differently, which costs a store hit, never
// correctness; and every served hit is re-audited anyway.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"slices"

	"vliwbind/internal/dfg"
)

// Canon is the canonical form of an original (unbound) dataflow graph:
// the content hash plus the permutation connecting graph node IDs to
// canonical positions, which transplants per-op data (bindings, start
// cycles) between isomorphic graphs.
type Canon struct {
	// Hash is the canonical structural digest: two graphs share it iff
	// their canonical serializations are byte-identical, which implies
	// they are isomorphic as dataflow computations. Node names, input
	// names, the graph name and declaration order never influence it.
	Hash [sha256.Size]byte
	// Order maps canonical position -> node ID: Order[k] is the ID of
	// the node serialized at position k. It is a topological order.
	Order []int32
	// Pos is the inverse permutation: Pos[id] is the canonical position
	// of node id.
	Pos []int32
}

// commutative reports whether the operands of an operation type can be
// swapped without changing the computed value. Only such operations have
// their operand order normalized away; sub, neg, muli and the spill ops
// keep operand order significant.
func commutative(op dfg.OpType) bool { return op == dfg.OpAdd || op == dfg.OpMul }

// Canonicalize computes the canonical form of g. It rejects bound graphs
// (the store addresses requests, and requests are original graphs) and
// graphs with dependence cycles.
func Canonicalize(g *dfg.Graph) (*Canon, error) {
	if g == nil {
		return nil, fmt.Errorf("store: cannot canonicalize a nil graph")
	}
	if g.NumMoves() != 0 {
		return nil, fmt.Errorf("store: %q is a bound graph (%d moves); the store addresses original graphs",
			g.Name(), g.NumMoves())
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("store: graph %q has no nodes", g.Name())
	}
	nodes := g.Nodes()
	nin := g.NumInputs()

	// Uses of each external input: (consumer node, operand position),
	// with the position erased for commutative consumers so a+x and x+a
	// refine identically.
	type use struct {
		node int32
		pos  int32
	}
	inUses := make([][]use, nin)
	for i, nd := range nodes {
		for pi, v := range nd.Operands() {
			if !v.IsInput() {
				continue
			}
			p := int32(pi)
			if commutative(nd.Op()) {
				p = -1
			}
			inUses[v.Input()] = append(inUses[v.Input()], use{int32(i), p})
		}
	}

	// Initial colors from local shape only.
	color := make([]uint64, n)
	for i, nd := range nodes {
		h := mix(uint64(nd.Op()) + 0x51ed)
		if nd.Op().HasImm() {
			h = mix2(h, math.Float64bits(nd.Imm()))
		}
		if nd.IsOutput() {
			h = mix2(h, 0x0f)
		}
		color[i] = h
	}
	inColor := make([]uint64, nin)
	for i := range inColor {
		inColor[i] = 0x9e3779b97f4a7c15
	}

	// Refinement rounds: stop when the node-color partition cardinality
	// stops growing (or becomes discrete). Color values keep churning
	// after the partition stabilizes — they are hashes of hashes — so the
	// cardinality, not the values, is the fixpoint signal.
	newColor := make([]uint64, n)
	newIn := make([]uint64, nin)
	var scratch []uint64
	prev := countDistinct(color)
	for round := 0; round < n; round++ {
		for idx, uses := range inUses {
			scratch = scratch[:0]
			for _, u := range uses {
				scratch = append(scratch, mix2(color[u.node], uint64(u.pos+2)))
			}
			slices.Sort(scratch)
			h := mix2(inColor[idx], 0xa11)
			for _, x := range scratch {
				h = mix2(h, x)
			}
			newIn[idx] = h
		}
		for i, nd := range nodes {
			h := mix2(color[i], 0xd0)
			scratch = scratch[:0]
			for _, v := range nd.Operands() {
				if v.IsInput() {
					scratch = append(scratch, mix2(newIn[v.Input()], 0x1b))
				} else {
					scratch = append(scratch, color[v.Node().ID()])
				}
			}
			if commutative(nd.Op()) {
				slices.Sort(scratch)
			}
			for _, c := range scratch {
				h = mix2(h, c)
			}
			scratch = scratch[:0]
			for _, s := range nd.Succs() {
				scratch = append(scratch, color[s.ID()])
			}
			slices.Sort(scratch)
			h = mix2(h, 0xee)
			for _, c := range scratch {
				h = mix2(h, c)
			}
			newColor[i] = h
		}
		copy(color, newColor)
		copy(inColor, newIn)
		cur := countDistinct(color)
		if cur == n || cur <= prev {
			break
		}
		prev = cur
	}

	// Canonical topological order: Kahn, smallest (color, id) first.
	indeg := make([]int32, n)
	for _, nd := range nodes {
		indeg[nd.ID()] = int32(len(nd.Preds()))
	}
	placed := make([]bool, n)
	order := make([]int32, 0, n)
	for len(order) < n {
		best := -1
		for i := 0; i < n; i++ {
			if placed[i] || indeg[i] != 0 {
				continue
			}
			if best < 0 || color[i] < color[best] || (color[i] == color[best] && i < best) {
				best = i
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("store: graph %q has a dependence cycle", g.Name())
		}
		placed[best] = true
		order = append(order, int32(best))
		for _, s := range nodes[best].Succs() {
			indeg[s.ID()]--
		}
	}
	pos := make([]int32, n)
	for k, id := range order {
		pos[id] = int32(k)
	}

	// Canonical serialization. Input ids are assigned at first use in
	// serialization order, so input declaration order and unused inputs
	// never influence the hash.
	inID := make([]int32, nin)
	for i := range inID {
		inID[i] = -1
	}
	nextIn := int32(0)
	type opRef struct {
		isInput bool
		pos     int32  // canonical producer position (node operands)
		color   uint64 // input color (input operands)
		idx     int32  // original input index
	}
	var refs []opRef
	buf := make([]byte, 0, 16*n+32)
	buf = append(buf, "vliwbind-canon/v1\x00"...)
	buf = binary.AppendUvarint(buf, uint64(n))
	for _, id := range order {
		nd := nodes[id]
		buf = append(buf, byte(nd.Op()))
		if nd.IsOutput() {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		if nd.Op().HasImm() {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(nd.Imm()))
		}
		refs = refs[:0]
		for _, v := range nd.Operands() {
			if v.IsInput() {
				i := int32(v.Input())
				refs = append(refs, opRef{isInput: true, color: inColor[i], idx: i})
			} else {
				refs = append(refs, opRef{pos: pos[v.Node().ID()]})
			}
		}
		if commutative(nd.Op()) && len(refs) > 1 {
			slices.SortStableFunc(refs, func(a, b opRef) int {
				switch {
				case a.isInput != b.isInput:
					if !a.isInput {
						return -1
					}
					return 1
				case !a.isInput:
					return int(a.pos - b.pos)
				case a.color != b.color:
					if a.color < b.color {
						return -1
					}
					return 1
				default:
					return int(a.idx - b.idx)
				}
			})
		}
		for _, r := range refs {
			if r.isInput {
				if inID[r.idx] < 0 {
					inID[r.idx] = nextIn
					nextIn++
				}
				buf = append(buf, 1)
				buf = binary.AppendUvarint(buf, uint64(inID[r.idx]))
			} else {
				buf = append(buf, 0)
				buf = binary.AppendUvarint(buf, uint64(r.pos))
			}
		}
	}
	return &Canon{Hash: sha256.Sum256(buf), Order: order, Pos: pos}, nil
}

// mix is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// mixing function for the refinement colors. Color collisions cost
// store hits, never correctness, so 64 bits are plenty.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// mix2 combines an accumulator with one value, order-sensitively.
func mix2(h, x uint64) uint64 {
	return mix(h ^ (x*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019))
}

func countDistinct(xs []uint64) int {
	seen := make(map[uint64]struct{}, len(xs))
	for _, x := range xs {
		seen[x] = struct{}{}
	}
	return len(seen)
}
