package store

import (
	"testing"

	"vliwbind/internal/dfg"
	"vliwbind/internal/kernels"
)

// buildButterfly constructs a small DCT-like butterfly-and-scale kernel:
// two add/sub butterflies, two cosine scalings, and a three-output
// recombination tail. Its shape mixes commutative and non-commutative
// operations plus immediates, so every canonicalization rule is in play.
func buildButterfly() *dfg.Graph {
	b := dfg.NewBuilder("butterfly")
	x := b.Inputs("x", 4)
	s0 := b.Add(x[0], x[1])
	d0 := b.Sub(x[0], x[1])
	s1 := b.Add(x[2], x[3])
	d1 := b.Sub(x[2], x[3])
	m0 := b.MulImm(d0, 0.7071)
	m1 := b.MulImm(d1, 0.9238)
	y0 := b.Add(s0, s1)
	y1 := b.Sub(s0, s1)
	y2 := b.Add(m0, m1)
	b.Output(y0)
	b.Output(y1)
	b.Output(y2)
	return b.Graph()
}

// buildButterflyIso is the same computation with every incidental choice
// made differently: the graph and nodes are renamed, the inputs are
// declared in reverse, the nodes are created in a different (still
// topological) order, and every commutative operand pair is swapped.
// Canonicalize must not see any of it.
func buildButterflyIso() *dfg.Graph {
	b := dfg.NewBuilder("renamed")
	q3 := b.Input("q3")
	q2 := b.Input("q2")
	q1 := b.Input("q1")
	q0 := b.Input("q0")
	d1 := b.Named("hiDiff", dfg.OpSub, 0, q1, q0) // x[2]-x[3]
	m1 := b.Named("hiScale", dfg.OpMulImm, 0.9238, d1)
	s1 := b.Named("hiSum", dfg.OpAdd, 0, q0, q1) // x[3]+x[2], swapped
	d0 := b.Named("loDiff", dfg.OpSub, 0, q3, q2)
	s0 := b.Named("loSum", dfg.OpAdd, 0, q2, q3) // swapped
	m0 := b.Named("loScale", dfg.OpMulImm, 0.7071, d0)
	y2 := b.Named("outC", dfg.OpAdd, 0, m1, m0) // swapped
	y1 := b.Named("outB", dfg.OpSub, 0, s0, s1)
	y0 := b.Named("outA", dfg.OpAdd, 0, s1, s0) // swapped
	b.Output(y0)
	b.Output(y1)
	b.Output(y2)
	return b.Graph()
}

func mustCanon(t *testing.T, g *dfg.Graph) *Canon {
	t.Helper()
	c, err := Canonicalize(g)
	if err != nil {
		t.Fatalf("Canonicalize(%s): %v", g.Name(), err)
	}
	return c
}

// TestCanonIsomorphismCollides is the store's reason to exist: a renamed,
// input-permuted, node-reordered, commutative-operand-swapped copy of a
// kernel must hash identically, because its answers are interchangeable.
func TestCanonIsomorphismCollides(t *testing.T) {
	a := mustCanon(t, buildButterfly())
	b := mustCanon(t, buildButterflyIso())
	if a.Hash != b.Hash {
		t.Errorf("isomorphic graphs hash differently:\n  %x\n  %x", a.Hash, b.Hash)
	}
}

// TestCanonOneOpDiverges flips a single operation (the recombination
// add becomes a sub) and requires a different hash: the computations are
// not interchangeable, so their keys must not collide.
func TestCanonOneOpDiverges(t *testing.T) {
	base := mustCanon(t, buildButterfly())

	b := dfg.NewBuilder("oneOff")
	x := b.Inputs("x", 4)
	s0 := b.Add(x[0], x[1])
	d0 := b.Sub(x[0], x[1])
	s1 := b.Add(x[2], x[3])
	d1 := b.Sub(x[2], x[3])
	m0 := b.MulImm(d0, 0.7071)
	m1 := b.MulImm(d1, 0.9238)
	y0 := b.Add(s0, s1)
	y1 := b.Sub(s0, s1)
	y2 := b.Sub(m0, m1) // was Add
	b.Output(y0)
	b.Output(y1)
	b.Output(y2)
	other := mustCanon(t, b.Graph())

	if base.Hash == other.Hash {
		t.Error("graphs differing in one operation hash identically")
	}
}

// TestCanonImmediateMatters pins that immediate values participate in
// the hash: scaling by a different cosine is a different computation.
func TestCanonImmediateMatters(t *testing.T) {
	build := func(c float64) *dfg.Graph {
		b := dfg.NewBuilder("imm")
		x := b.Input("x")
		y := b.MulImm(x, c)
		b.Output(y)
		return b.Graph()
	}
	a := mustCanon(t, build(0.5))
	bb := mustCanon(t, build(0.25))
	if a.Hash == bb.Hash {
		t.Error("different immediates hash identically")
	}
}

// TestCanonCommutativity pins the operand-order rules one operation at a
// time: add and mul operands may swap, sub operands may not.
func TestCanonCommutativity(t *testing.T) {
	pair := func(op dfg.OpType, swap bool) *Canon {
		b := dfg.NewBuilder("p")
		x := b.Input("x")
		m := b.MulImm(x, 2) // distinguish the operands structurally
		var y dfg.Value
		if swap {
			y = b.Named("y", op, 0, m, x)
		} else {
			y = b.Named("y", op, 0, x, m)
		}
		b.Output(y)
		g := b.Graph()
		c, err := Canonicalize(g)
		if err != nil {
			panic(err)
		}
		return c
	}
	if pair(dfg.OpAdd, false).Hash != pair(dfg.OpAdd, true).Hash {
		t.Error("x+m and m+x hash differently")
	}
	if pair(dfg.OpMul, false).Hash != pair(dfg.OpMul, true).Hash {
		t.Error("x*m and m*x hash differently")
	}
	if pair(dfg.OpSub, false).Hash == pair(dfg.OpSub, true).Hash {
		t.Error("x-m and m-x hash identically")
	}
}

// TestCanonOutputFlagMatters pins that liveness out of the block is part
// of the content: a binding cached for a graph where a value is dead may
// be a poor answer for one where it must be live-out.
func TestCanonOutputFlagMatters(t *testing.T) {
	build := func(both bool) *dfg.Graph {
		b := dfg.NewBuilder("o")
		x := b.Input("x")
		m := b.MulImm(x, 2)
		y := b.MulImm(m, 3)
		if both {
			b.Output(m)
		}
		b.Output(y)
		return b.Graph()
	}
	a := mustCanon(t, build(false))
	bb := mustCanon(t, build(true))
	if a.Hash == bb.Hash {
		t.Error("different output sets hash identically")
	}
}

// TestCanonOrderIsTopological checks the transplant permutation: Order
// must be a permutation of the node IDs respecting every dependence
// edge, and Pos must be its inverse.
func TestCanonOrderIsTopological(t *testing.T) {
	g := kernels.DCTDIT()
	c := mustCanon(t, g)
	n := g.NumNodes()
	if len(c.Order) != n || len(c.Pos) != n {
		t.Fatalf("Order/Pos have %d/%d entries, graph has %d nodes", len(c.Order), len(c.Pos), n)
	}
	seen := make([]bool, n)
	for k, id := range c.Order {
		if id < 0 || int(id) >= n || seen[id] {
			t.Fatalf("Order[%d] = %d is not a fresh node ID", k, id)
		}
		seen[id] = true
		if c.Pos[id] != int32(k) {
			t.Errorf("Pos[%d] = %d, want %d (inverse of Order)", id, c.Pos[id], k)
		}
	}
	for _, nd := range g.Nodes() {
		for _, p := range nd.Preds() {
			if c.Pos[p.ID()] >= c.Pos[nd.ID()] {
				t.Errorf("predecessor %s (pos %d) not before %s (pos %d)",
					p.Name(), c.Pos[p.ID()], nd.Name(), c.Pos[nd.ID()])
			}
		}
	}
}

// TestCanonDeterministic: canonicalizing the same graph twice, and a
// freshly rebuilt copy, must agree — the hash is a pure function of the
// content.
func TestCanonDeterministic(t *testing.T) {
	for _, k := range kernels.All() {
		g1, g2 := k.Build(), k.Build()
		c1 := mustCanon(t, g1)
		c2 := mustCanon(t, g2)
		if c1.Hash != c2.Hash {
			t.Errorf("%s: two builds of the same kernel hash differently", k.Name)
		}
	}
}

// TestCanonKernelsDistinct: the checked-in benchmark kernels are all
// different computations, so they must all hash differently.
func TestCanonKernelsDistinct(t *testing.T) {
	seen := make(map[[32]byte]string)
	for _, k := range kernels.All() {
		c := mustCanon(t, k.Build())
		if prev, dup := seen[c.Hash]; dup {
			t.Errorf("kernels %s and %s hash identically", prev, k.Name)
		}
		seen[c.Hash] = k.Name
	}
}

// TestCanonRejects pins the domain: the store addresses original
// graphs, so nil, empty, and bound graphs are refused.
func TestCanonRejects(t *testing.T) {
	if _, err := Canonicalize(nil); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Canonicalize(dfg.NewBuilder("empty").Graph()); err == nil {
		t.Error("empty graph accepted")
	}
	b := dfg.NewBuilder("bound")
	x := b.Input("x")
	m := b.MulImm(x, 2)
	mv := b.Move(m)
	y := b.Add(m, mv)
	b.Output(y)
	if _, err := Canonicalize(b.Graph()); err == nil {
		t.Error("bound graph (with moves) accepted")
	}
}
