package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// intKey derives a distinct Key from an integer.
func intKey(i int) Key {
	var k Key
	k[0] = byte(i)
	k[1] = byte(i >> 8)
	k[2] = byte(i >> 16)
	return k
}

func journalLines(t *testing.T, dir string) int {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	return bytes.Count(b, []byte("\n"))
}

// residentEntries snapshots the store's resident set, most recent first.
func residentEntries(s *Store) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Entry
	for n := s.root.next; n != &s.root; n = n.next {
		out = append(out, n.ent)
	}
	return out
}

// TestCompactRewritesToLiveEntries pins the core contract: an explicit
// Compact leaves one journal record per resident entry, drops every
// tombstone and superseded duplicate, and a reopen replays the exact
// same resident set.
func TestCompactRewritesToLiveEntries(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 20 puts, 5 of them overwritten, 5 evicted: 25 payload lines + 5
	// tombstones in the raw journal, 15 live entries.
	for i := 0; i < 20; i++ {
		if err := s.Put(Entry{Key: intKey(i), Kind: KindIter, Binding: []int{i % 2}, L: 10 + i, M: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(Entry{Key: intKey(i), Kind: KindIter, Binding: []int{1}, L: 100 + i, M: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 5; i < 10; i++ {
		if _, err := s.Evict(intKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := journalLines(t, dir); got != 30 {
		t.Fatalf("raw journal has %d lines, want 30", got)
	}
	before := residentEntries(s)
	cs, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Live != 15 || cs.Dropped != 15 {
		t.Fatalf("CompactStats = %+v, want Live=15 Dropped=15", cs)
	}
	if got := journalLines(t, dir); got != 15 {
		t.Fatalf("compacted journal has %d lines, want 15", got)
	}
	// The store keeps appending after compaction.
	if err := s.Put(Entry{Key: intKey(99), Kind: KindInit, Binding: []int{0}, L: 1}); err != nil {
		t.Fatal(err)
	}
	if got := journalLines(t, dir); got != 16 {
		t.Fatalf("journal has %d lines after post-compact put, want 16", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if st := re.OpenStats(); st.Skipped != 0 || st.Tombstoned != 0 || st.Replayed != 16 {
		t.Fatalf("replay of compacted journal = %+v, want 16 clean replays", st)
	}
	for _, ent := range before {
		got := re.Get(ent.Key)
		if got == nil {
			t.Fatalf("entry %s lost by compaction round-trip", ent.Key)
		}
		if got.Kind != ent.Kind || got.L != ent.L || got.M != ent.M {
			t.Fatalf("entry %s replayed as %+v, want %+v", ent.Key, got, ent)
		}
	}
	for i := 5; i < 10; i++ {
		if re.Get(intKey(i)) != nil {
			t.Fatalf("evicted entry %d resurrected by compaction", i)
		}
	}
}

// TestCompactBoundsJournalGrowth runs the eviction-heavy workload the
// ROADMAP names: a churn of puts and evicts that would grow the raw
// journal without bound. Auto-compaction must keep the file's record
// count bounded by a constant multiple of the live set, and the final
// journal must still replay to exactly the resident entries.
func TestCompactBoundsJournalGrowth(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	const churn = 4000
	for i := 0; i < churn; i++ {
		if err := s.Put(Entry{Key: intKey(i % 128), Kind: KindIter, Binding: []int{i % 3}, L: i}); err != nil {
			t.Fatal(err)
		}
		if i%2 == 1 { // evict half of what we put: tombstone-heavy traffic
			if _, err := s.Evict(intKey(i % 128)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Without compaction the journal would hold 6000 records. With the
	// thresholds (compact when lines >= max(256, 4*live)) it must stay
	// within one growth window of the trigger.
	lines := journalLines(t, dir)
	if lines > compactLiveFactor*(128+1)+1 {
		t.Fatalf("journal grew to %d records under eviction-heavy churn; compaction is not bounding it", lines)
	}
	live := s.Len()
	before := residentEntries(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != live {
		t.Fatalf("reopen after churn: %d entries, want %d", re.Len(), live)
	}
	for _, ent := range before {
		got := re.Get(ent.Key)
		if got == nil || got.L != ent.L {
			t.Fatalf("entry %s did not survive compacting churn (got %+v, want %+v)", ent.Key, got, ent)
		}
	}
}

// TestCompactMemoryStoreNoop pins that memory-only (and nil) stores
// compact to nothing without error.
func TestCompactMemoryStoreNoop(t *testing.T) {
	s := NewMemory(0)
	s.Put(Entry{Key: intKey(1), Kind: KindIter})
	if cs, err := s.Compact(); err != nil || cs != (CompactStats{}) {
		t.Fatalf("memory-store Compact = %+v, %v; want zero stats, nil", cs, err)
	}
	var nilStore *Store
	if cs, err := nilStore.Compact(); err != nil || cs != (CompactStats{}) {
		t.Fatalf("nil-store Compact = %+v, %v; want zero stats, nil", cs, err)
	}
}

// TestValid pins the constructor check Options.Validate relies on.
func TestValid(t *testing.T) {
	var nilStore *Store
	if err := nilStore.Valid(); err != nil {
		t.Fatalf("nil store must be valid (inert): %v", err)
	}
	if err := NewMemory(0).Valid(); err != nil {
		t.Fatalf("NewMemory store must be valid: %v", err)
	}
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Valid(); err != nil {
		t.Fatalf("Open store must be valid: %v", err)
	}
	if err := new(Store).Valid(); err == nil {
		t.Fatal("zero-value Store passed Valid; it would panic on first Put")
	}
}
