// Package store is the cross-request result store: a concurrency-safe,
// content-addressed map from canonical request keys to binding results,
// backed by an in-memory LRU and an optional append-only JSONL journal
// on disk. The per-run memo cache inside the engine dies with every
// Bind call; this store is what survives between them, turning repeated
// traffic on the working set from "re-search" into "re-audit".
//
// The store itself is dumb on purpose — config plane, not data plane.
// It never inspects graphs, never audits, and never decides whether an
// entry is trustworthy; it stores bytes under keys and forgets old ones.
// The facade owns the semantics: it canonicalizes the request, checks a
// hit against a fresh audit certificate, and evicts entries that fail.
// That split keeps the trust boundary in one place (the audit on the
// read path) no matter how the entry got into the store.
package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"vliwbind/internal/dfg"
	"vliwbind/internal/machine"
)

// Key addresses one stored result: the SHA-256 of the request kind, the
// canonical graph serialization, the machine fingerprint, and any extra
// request bytes (options fingerprint, loop structure). Comparable, so it
// works directly as a map key.
type Key [sha256.Size]byte

// String renders the key as lowercase hex, the form the journal and the
// obs events use.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the hex form String produces.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil {
		return k, fmt.Errorf("store: bad key %q: %v", s, err)
	}
	if len(b) != len(k) {
		return k, fmt.Errorf("store: bad key %q: %d bytes, want %d", s, len(b), len(k))
	}
	copy(k[:], b)
	return k, nil
}

// Request kinds. The kind participates in the key, so a B-ITER result
// can never answer a B-INIT request (they have different quality
// contracts) and a modulo schedule can never answer either.
const (
	KindIter   = "bind:iter"
	KindInit   = "bind:init"
	KindModulo = "modulo"
)

// ResultKey derives the store key for a request: kind, canonical graph
// hash, machine fingerprint, and extra request bytes (the options
// fingerprint; for modulo requests also the carried-dependence
// structure). Everything that changes the answer must land in here;
// everything that only renames the question must not.
func ResultKey(kind string, c *Canon, dp *machine.Datapath, extra []byte) Key {
	h := sha256.New()
	h.Write([]byte("vliwbind-store/v1\x00"))
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(c.Hash[:])
	h.Write([]byte(MachineFingerprint(dp)))
	h.Write([]byte{0})
	h.Write(extra)
	var k Key
	h.Sum(k[:0])
	return k
}

// MachineFingerprint renders everything about a datapath that affects
// binding results: the spec string (cluster structure, topology,
// channel capacity, move timing) plus the FU timing and memory-port
// parameters the spec notation cannot express.
func MachineFingerprint(dp *machine.Datapath) string {
	var b strings.Builder
	b.WriteString(dp.SpecString())
	for t := dfg.FUType(1); t < dfg.FUType(dfg.NumFUTypes); t++ {
		s := dp.Spec(t)
		fmt.Fprintf(&b, ";%d:%d,%d", t, s.Lat, s.DII)
	}
	fmt.Fprintf(&b, ";mem=%d", dp.NumFU(0, dfg.FUMem))
	return b.String()
}

// Entry is one stored result, expressed entirely in canonical positions
// so it can be transplanted onto any graph with the same canonical form.
// For bind results, Binding[k] is the cluster of the op at canonical
// position k, and L/M are advisory metrics from the publishing run (the
// list scheduler breaks ties on node IDs, so an isomorphic-but-renumbered
// graph may legitimately re-evaluate to slightly different numbers —
// adopters must re-evaluate, never trust these). For modulo results,
// II/Start/Cluster describe the pipelined schedule and Moves holds
// {canonical producer position, destination cluster, cycle} triples.
type Entry struct {
	Key  Key
	Kind string

	// Bind results (KindIter, KindInit).
	Binding []int
	L, M    int

	// Modulo results (KindModulo).
	II      int
	Start   []int
	Cluster []int
	Moves   [][3]int
}

// lruNode is one resident entry threaded on the intrusive recency list.
// The sentinel-rooted doubly-linked list gives Get a zero-allocation
// move-to-front.
type lruNode struct {
	prev, next *lruNode
	ent        Entry
}

// OpenStats reports what journal replay found. Skipped lines are the
// crash-safety currency: a torn final write, a flipped bit, or garbage
// appended by another process must cost that line only, never the store.
type OpenStats struct {
	// Replayed counts journal records adopted into memory (later
	// duplicates overwrite earlier ones and count once each).
	Replayed int
	// Skipped counts undecodable or malformed lines dropped on the floor.
	Skipped int
	// Tombstoned counts deletion records applied.
	Tombstoned int
}

// DefaultMaxEntries bounds the resident set when the caller passes a
// non-positive cap: entries are a few hundred bytes each, so the default
// keeps the store around a megabyte while comfortably covering the
// working set of a sweep over every checked-in kernel times hundreds of
// machine configurations.
const DefaultMaxEntries = 4096

// Store is the concurrency-safe result store. All methods may be called
// from any goroutine. A nil *Store is inert: Get returns nil, Put and
// Evict succeed as no-ops — callers need no nil checks on the hot path.
type Store struct {
	mu      sync.Mutex
	byKey   map[Key]*lruNode
	root    lruNode // sentinel: root.next is most recent, root.prev least
	max     int
	dir     string   // journal directory; "" for memory-only stores
	journal *os.File // nil for memory-only stores
	w       *bufio.Writer
	stats   OpenStats

	// Compaction bookkeeping: lines approximates the journal's record
	// count (replayed + skipped + tombstoned at open, plus every append
	// since), tombs the tombstones appended since open or last compact.
	// Both drive the auto-compaction trigger in maybeCompactLocked.
	lines int
	tombs int
}

// NewMemory creates a memory-only store holding at most max entries
// (DefaultMaxEntries when max <= 0).
func NewMemory(max int) *Store {
	if max <= 0 {
		max = DefaultMaxEntries
	}
	s := &Store{byKey: make(map[Key]*lruNode), max: max}
	s.root.next = &s.root
	s.root.prev = &s.root
	return s
}

// journalName is the journal file inside a store directory.
const journalName = "results.jsonl"

// Open creates or reopens a journal-backed store in directory dir,
// replaying results.jsonl into memory. Corrupt, truncated, or otherwise
// undecodable lines are skipped (counted in OpenStats); duplicate keys
// are last-write-wins; "del" tombstones remove earlier records. The
// journal stays open for appending until Close.
func Open(dir string, max int) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %v", err)
	}
	s := NewMemory(max)
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %v", err)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		ent, del, ok := decodeRecord(line)
		if !ok {
			s.stats.Skipped++
			continue
		}
		if del {
			s.stats.Tombstoned++
			s.dropLocked(ent.Key)
			continue
		}
		s.stats.Replayed++
		s.putLocked(ent)
	}
	if err := sc.Err(); err != nil {
		// An oversized or unreadable tail is a corrupt tail: keep what
		// replayed cleanly, count one skip, and append after it.
		s.stats.Skipped++
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %v", err)
	}
	s.dir = dir
	s.journal = f
	s.w = bufio.NewWriter(f)
	s.lines = s.stats.Replayed + s.stats.Skipped + s.stats.Tombstoned
	s.tombs = 0
	return s, nil
}

// Valid reports whether the store is safe to use: nil stores are (they
// are documented inert), and so is anything built by Open or NewMemory.
// A *Store constructed any other way — the zero value, say — has no map
// and no recency list and would panic deep inside the first Put, so
// option validators reject it up front with this check instead.
func (s *Store) Valid() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byKey == nil || s.root.next == nil || s.root.prev == nil {
		return fmt.Errorf("store: Store was not created with Open or NewMemory (zero-value Store is unusable)")
	}
	return nil
}

// OpenStats returns what journal replay found; zero for memory stores.
func (s *Store) OpenStats() OpenStats {
	if s == nil {
		return OpenStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Len returns the number of resident entries.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byKey)
}

// Get returns the entry stored under k, or nil. The returned Entry is a
// copy-by-value snapshot holding shared slices; callers must treat the
// slice contents as immutable. A hit refreshes the entry's recency.
func (s *Store) Get(k Key) *Entry {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.byKey[k]
	if n == nil {
		return nil
	}
	s.unlink(n)
	s.pushFront(n)
	return &n.ent
}

// Put stores e under e.Key, replacing any previous entry, and appends it
// to the journal when one is attached. Past the capacity bound the least
// recently used entry is dropped from memory (no tombstone: the journal
// keeps the record, so a reopen with a larger cap still has it).
func (s *Store) Put(e Entry) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.putLocked(e)
	if s.w == nil {
		return nil
	}
	if err := s.appendRecord(encodeRecord(&e, false)); err != nil {
		return fmt.Errorf("store: journal append: %v", err)
	}
	s.maybeCompactLocked()
	return nil
}

// Evict removes the entry stored under k, reporting whether it was
// resident, and appends a tombstone to the journal so the eviction
// survives a reopen. The facade calls this when a hit fails audit: the
// entry is poison and must never be served again, not even after a
// restart.
func (s *Store) Evict(k Key) (bool, error) {
	if s == nil {
		return false, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	had := s.dropLocked(k)
	if s.w == nil {
		return had, nil
	}
	if err := s.appendRecord(encodeRecord(&Entry{Key: k}, true)); err != nil {
		return had, fmt.Errorf("store: journal append: %v", err)
	}
	s.tombs++
	s.maybeCompactLocked()
	return had, nil
}

// Close flushes and closes the journal. The store remains usable as a
// memory-only store afterwards. Closing a memory store is a no-op.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	var err error
	if s.w != nil {
		err = s.w.Flush()
	}
	if cerr := s.journal.Close(); err == nil {
		err = cerr
	}
	s.journal = nil
	s.w = nil
	return err
}

func (s *Store) putLocked(e Entry) {
	if n := s.byKey[e.Key]; n != nil {
		n.ent = e
		s.unlink(n)
		s.pushFront(n)
		return
	}
	n := &lruNode{ent: e}
	s.byKey[e.Key] = n
	s.pushFront(n)
	for len(s.byKey) > s.max {
		last := s.root.prev
		s.unlink(last)
		delete(s.byKey, last.ent.Key)
	}
}

func (s *Store) dropLocked(k Key) bool {
	n := s.byKey[k]
	if n == nil {
		return false
	}
	s.unlink(n)
	delete(s.byKey, k)
	return true
}

func (s *Store) unlink(n *lruNode) {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev, n.next = nil, nil
}

func (s *Store) pushFront(n *lruNode) {
	n.prev = &s.root
	n.next = s.root.next
	n.prev.next = n
	n.next.prev = n
}

// appendRecord writes one journal line and flushes it: every Put/Evict
// is durable when the call returns, and a torn write from a crash mid-
// flush can corrupt at most the final line, which replay skips.
func (s *Store) appendRecord(rec []byte) error {
	if _, err := s.w.Write(rec); err != nil {
		return err
	}
	if err := s.w.WriteByte('\n'); err != nil {
		return err
	}
	s.lines++
	return s.w.Flush()
}

// Auto-compaction trigger. The append-only journal accumulates one line
// per Put and per Evict forever; under eviction-heavy traffic (a small
// LRU with a hot churn, or an audit-on-read layer evicting poisoned
// entries) the file grows without bound while the live set stays small.
// Once the journal holds at least compactMinLines records and either
// carries compactLiveFactor× more records than live entries or is at
// least a quarter tombstones, the next Put/Evict rewrites it in place.
// The thresholds keep steady-state compaction cost amortized: a rewrite
// costs O(live) and buys at least compactLiveFactor×live appends of
// headroom before the next one.
const (
	compactMinLines   = 256
	compactLiveFactor = 4
)

func (s *Store) maybeCompactLocked() {
	if s.lines < compactMinLines {
		return
	}
	if s.lines >= compactLiveFactor*(len(s.byKey)+1) || s.tombs >= s.lines/4 {
		// Best-effort: a failed compaction leaves the old journal intact
		// and will be retried once the counters grow further.
		s.compactLocked()
	}
}

// CompactStats reports what one journal compaction did.
type CompactStats struct {
	// Live is the number of records the rewritten journal holds — one
	// per resident entry.
	Live int
	// Dropped is how many journal lines the rewrite discarded:
	// superseded duplicates, tombstones, skipped garbage, and records
	// whose entries have since been evicted.
	Dropped int
}

// Compact rewrites the append-only journal down to the live entries
// only: one record per resident entry, no tombstones, no superseded
// duplicates, no corrupt lines. Replaying the compacted journal yields
// exactly the same resident set. The rewrite is crash-safe — the new
// journal is built in a temporary file and atomically renamed over the
// old one, so a crash mid-compaction costs nothing. Memory-only stores
// (and nil stores) return zero stats and no error. The daemon calls
// this on drain; Put/Evict call it automatically past a size/tombstone
// threshold.
func (s *Store) Compact() (CompactStats, error) {
	if s == nil {
		return CompactStats{}, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return CompactStats{}, nil
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() (CompactStats, error) {
	if err := s.w.Flush(); err != nil {
		return CompactStats{}, fmt.Errorf("store: compact: %v", err)
	}
	path := filepath.Join(s.dir, journalName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return CompactStats{}, fmt.Errorf("store: compact: %v", err)
	}
	w := bufio.NewWriter(f)
	// Least-recently-used first, so the rewritten journal replays into
	// the same recency order the resident list holds now.
	live := 0
	for n := s.root.prev; n != &s.root; n = n.prev {
		if _, err := w.Write(encodeRecord(&n.ent, false)); err == nil {
			err = w.WriteByte('\n')
		}
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return CompactStats{}, fmt.Errorf("store: compact: %v", err)
		}
		live++
	}
	if err := w.Flush(); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return CompactStats{}, fmt.Errorf("store: compact: %v", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return CompactStats{}, fmt.Errorf("store: compact: %v", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return CompactStats{}, fmt.Errorf("store: compact: %v", err)
	}
	// Swap the append handle to the compacted file. The old handle now
	// points at an unlinked inode; closing it drops the last reference.
	nf, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The compacted journal is on disk but unappendable; surface the
		// error and leave the store memory-only rather than appending to
		// the unlinked old file.
		s.journal.Close()
		s.journal = nil
		s.w = nil
		return CompactStats{}, fmt.Errorf("store: compact: reopen: %v", err)
	}
	s.journal.Close()
	s.journal = nf
	s.w = bufio.NewWriter(nf)
	stats := CompactStats{Live: live, Dropped: s.lines - live}
	s.lines = live
	s.tombs = 0
	return stats, nil
}

// record is the journal line format: version, hex key, and either a
// tombstone marker or the entry payload. JSON keeps the journal
// greppable and diffable; the fsync-free append discipline relies on
// replay skipping any torn tail.
type record struct {
	V     int      `json:"v"`
	Key   string   `json:"key"`
	Del   bool     `json:"del,omitempty"`
	Kind  string   `json:"kind,omitempty"`
	Bn    []int    `json:"bn,omitempty"`
	L     int      `json:"l,omitempty"`
	M     int      `json:"m,omitempty"`
	II    int      `json:"ii,omitempty"`
	Start []int    `json:"start,omitempty"`
	Cl    []int    `json:"cl,omitempty"`
	Moves [][3]int `json:"moves,omitempty"`
}

func encodeRecord(e *Entry, del bool) []byte {
	r := record{V: 1, Key: e.Key.String(), Del: del}
	if !del {
		r.Kind = e.Kind
		r.Bn = e.Binding
		r.L, r.M = e.L, e.M
		r.II = e.II
		r.Start = e.Start
		r.Cl = e.Cluster
		r.Moves = e.Moves
	}
	b, err := json.Marshal(r)
	if err != nil {
		// Marshal of plain ints and slices cannot fail; keep the journal
		// well-formed even if it somehow does.
		return []byte(`{"v":1,"key":"` + e.Key.String() + `","del":true}`)
	}
	return b
}

// decodeRecord parses one journal line. ok is false for anything replay
// must skip: bad JSON, unknown version, malformed key, or a payload
// record with no kind.
func decodeRecord(line []byte) (Entry, bool, bool) {
	var r record
	if err := json.Unmarshal(line, &r); err != nil {
		return Entry{}, false, false
	}
	if r.V != 1 {
		return Entry{}, false, false
	}
	k, err := ParseKey(r.Key)
	if err != nil {
		return Entry{}, false, false
	}
	if r.Del {
		return Entry{Key: k}, true, true
	}
	if r.Kind == "" {
		return Entry{}, false, false
	}
	return Entry{Key: k, Kind: r.Kind, Binding: r.Bn, L: r.L, M: r.M,
		II: r.II, Start: r.Start, Cluster: r.Cl, Moves: r.Moves}, false, true
}
