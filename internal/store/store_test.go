package store

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"vliwbind/internal/leakcheck"
	"vliwbind/internal/machine"
)

func testKey(s string) Key { return Key(sha256.Sum256([]byte(s))) }

func mustMachine(t *testing.T, spec string) *machine.Datapath {
	t.Helper()
	dp, err := machine.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return dp
}

func bindEntry(k string, l int) Entry {
	return Entry{Key: testKey(k), Kind: KindIter, Binding: []int{0, 1, 0}, L: l, M: 2}
}

func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	if got := s.Get(testKey("a")); got != nil {
		t.Errorf("nil store Get = %+v, want nil", got)
	}
	if err := s.Put(bindEntry("a", 1)); err != nil {
		t.Errorf("nil store Put: %v", err)
	}
	if had, err := s.Evict(testKey("a")); had || err != nil {
		t.Errorf("nil store Evict = (%v, %v)", had, err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("nil store Close: %v", err)
	}
	if s.Len() != 0 || s.OpenStats() != (OpenStats{}) {
		t.Error("nil store reports residency")
	}
}

func TestMemoryPutGetReplace(t *testing.T) {
	s := NewMemory(0)
	if got := s.Get(testKey("a")); got != nil {
		t.Fatalf("empty store Get = %+v", got)
	}
	e := bindEntry("a", 10)
	s.Put(e)
	got := s.Get(testKey("a"))
	if got == nil || !reflect.DeepEqual(*got, e) {
		t.Fatalf("Get = %+v, want %+v", got, e)
	}
	// Replace under the same key: last write wins.
	e2 := bindEntry("a", 7)
	s.Put(e2)
	if got := s.Get(testKey("a")); got == nil || got.L != 7 {
		t.Fatalf("after replace Get.L = %+v, want 7", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if had, _ := s.Evict(testKey("a")); !had {
		t.Fatal("Evict of resident entry reported absent")
	}
	if s.Get(testKey("a")) != nil || s.Len() != 0 {
		t.Fatal("entry survived Evict")
	}
}

// TestLRUEviction fills a capacity-2 store with three entries and checks
// that the least recently *used* — not least recently inserted — entry
// is the one dropped.
func TestLRUEviction(t *testing.T) {
	s := NewMemory(2)
	s.Put(bindEntry("a", 1))
	s.Put(bindEntry("b", 2))
	s.Get(testKey("a")) // refresh a; b is now least recently used
	s.Put(bindEntry("c", 3))
	if s.Get(testKey("b")) != nil {
		t.Error("least recently used entry b survived past capacity")
	}
	if s.Get(testKey("a")) == nil || s.Get(testKey("c")) == nil {
		t.Error("recently used entries evicted")
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	eb := bindEntry("bind", 12)
	em := Entry{Key: testKey("mod"), Kind: KindModulo, II: 3,
		Start: []int{0, 1, 4}, Cluster: []int{0, 1, 1}, Moves: [][3]int{{0, 1, 2}}}
	if err := s.Put(eb); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(em); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if st := r.OpenStats(); st.Replayed != 2 || st.Skipped != 0 || st.Tombstoned != 0 {
		t.Errorf("OpenStats = %+v, want 2 replayed", st)
	}
	if got := r.Get(eb.Key); got == nil || !reflect.DeepEqual(*got, eb) {
		t.Errorf("bind entry did not round-trip: %+v", got)
	}
	if got := r.Get(em.Key); got == nil || !reflect.DeepEqual(*got, em) {
		t.Errorf("modulo entry did not round-trip: %+v", got)
	}
}

// TestJournalCrashSafety replays a journal containing every kind of
// damage a crash or a bit flip can leave behind: each bad line must cost
// exactly itself, never the store.
func TestJournalCrashSafety(t *testing.T) {
	dir := t.TempDir()
	good := bindEntry("good", 9)
	dup1 := bindEntry("dup", 1)
	dup2 := bindEntry("dup", 2)
	gone := bindEntry("gone", 3)
	lines := []string{
		string(encodeRecord(&good, false)),
		"this is not json at all",
		string(encodeRecord(&dup1, false))[:20],                             // torn mid-record write
		`{"v":2,"key":"` + testKey("v2").String() + `","kind":"bind:iter"}`, // future version
		`{"v":1,"key":"zz-not-hex","kind":"bind:iter"}`,                     // malformed key
		`{"v":1,"key":"` + testKey("nokind").String() + `"}`,                // payload with no kind
		string(encodeRecord(&dup1, false)),
		string(encodeRecord(&dup2, false)), // duplicate key: last write wins
		string(encodeRecord(&gone, false)),
		string(encodeRecord(&Entry{Key: gone.Key}, true)), // tombstone
	}
	path := filepath.Join(dir, journalName)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := s.OpenStats()
	if st.Replayed != 4 || st.Skipped != 5 || st.Tombstoned != 1 {
		t.Errorf("OpenStats = %+v, want {Replayed:4 Skipped:5 Tombstoned:1}", st)
	}
	if got := s.Get(good.Key); got == nil || got.L != 9 {
		t.Errorf("good entry lost to neighbouring corruption: %+v", got)
	}
	if got := s.Get(dup1.Key); got == nil || got.L != 2 {
		t.Errorf("duplicate key not last-write-wins: %+v", got)
	}
	if s.Get(gone.Key) != nil {
		t.Error("tombstoned entry served")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}

	// The reopened store must still be appendable after the damage.
	fresh := bindEntry("fresh", 4)
	if err := s.Put(fresh); err != nil {
		t.Fatal(err)
	}
	s.Close()
	r, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Get(fresh.Key); got == nil || got.L != 4 {
		t.Errorf("append after corrupt replay did not survive reopen: %+v", got)
	}
}

// TestJournalOversizedTail: a tail line beyond the scanner's 1MB limit
// (e.g. garbage appended by another process) stops replay with one
// skip, keeping everything that replayed cleanly.
func TestJournalOversizedTail(t *testing.T) {
	dir := t.TempDir()
	good := bindEntry("good", 5)
	var sb strings.Builder
	sb.Write(encodeRecord(&good, false))
	sb.WriteByte('\n')
	sb.WriteString(strings.Repeat("x", 2<<20)) // no trailing newline: torn tail
	path := filepath.Join(dir, journalName)
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := s.OpenStats()
	if st.Replayed != 1 || st.Skipped == 0 {
		t.Errorf("OpenStats = %+v, want 1 replayed and the tail skipped", st)
	}
	if s.Get(good.Key) == nil {
		t.Error("clean prefix lost to the oversized tail")
	}
}

// TestEvictTombstonePersists: an eviction is journaled, so a poisoned
// entry stays gone across a reopen even though its Put record is still
// in the journal.
func TestEvictTombstonePersists(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	poison := bindEntry("poison", 1)
	keep := bindEntry("keep", 2)
	s.Put(poison)
	s.Put(keep)
	if had, err := s.Evict(poison.Key); !had || err != nil {
		t.Fatalf("Evict = (%v, %v)", had, err)
	}
	s.Close()

	r, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Get(poison.Key) != nil {
		t.Error("evicted entry resurrected by reopen")
	}
	if r.Get(keep.Key) == nil {
		t.Error("unrelated entry lost")
	}
	if st := r.OpenStats(); st.Tombstoned != 1 {
		t.Errorf("OpenStats = %+v, want 1 tombstone", st)
	}
}

// TestConcurrentAccess hammers one journal-backed store from many
// goroutines mixing Put, Get, and Evict; run under -race this is the
// concurrency-safety proof. leakcheck guards the no-goroutine contract:
// the store does all its work on the caller's goroutine.
func TestConcurrentAccess(t *testing.T) {
	leakcheck.Check(t)
	s, err := Open(t.TempDir(), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const workers, rounds = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := fmt.Sprintf("k%d", i%50)
				switch i % 3 {
				case 0:
					if err := s.Put(bindEntry(k, w*rounds+i)); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				case 1:
					if e := s.Get(testKey(k)); e != nil && e.Kind != KindIter {
						t.Errorf("Get returned mangled entry %+v", e)
						return
					}
				default:
					if _, err := s.Evict(testKey(k)); err != nil {
						t.Errorf("Evict: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() > 64 {
		t.Errorf("Len = %d exceeds capacity 64", s.Len())
	}
}

// TestResultKeySeparatesRequests pins the key derivation: kind, machine,
// and option bytes each split the key space on their own.
func TestResultKeySeparatesRequests(t *testing.T) {
	g := buildButterfly()
	c, err := Canonicalize(g)
	if err != nil {
		t.Fatal(err)
	}
	dp2 := mustMachine(t, "[1,1|1,1]")
	dp3 := mustMachine(t, "[1,1|1,1|1,1]")
	base := ResultKey(KindIter, c, dp2, []byte("opts"))
	if k := ResultKey(KindInit, c, dp2, []byte("opts")); k == base {
		t.Error("kind does not separate keys")
	}
	if k := ResultKey(KindIter, c, dp3, []byte("opts")); k == base {
		t.Error("machine does not separate keys")
	}
	if k := ResultKey(KindIter, c, dp2, []byte("other")); k == base {
		t.Error("extra bytes do not separate keys")
	}
	if k := ResultKey(KindIter, c, dp2, []byte("opts")); k != base {
		t.Error("identical request derives a different key")
	}
}

// TestMachineFingerprintSensitivity: anything about a datapath that can
// change a binding result — structure, topology, capacity, timing — must
// change the fingerprint.
func TestMachineFingerprintSensitivity(t *testing.T) {
	base := MachineFingerprint(mustMachine(t, "[1,1|1,1]"))
	for _, spec := range []string{
		"[2,1|1,1]",        // different cluster structure
		"[1,1|1,1]@p2p",    // different topology
		"[1,1|1,1]@ring:2", // different link capacity
	} {
		if fp := MachineFingerprint(mustMachine(t, spec)); fp == base {
			t.Errorf("fingerprint of %s collides with [1,1|1,1]", spec)
		}
	}
	slow, err := machine.Parse("[1,1|1,1]", machine.Config{Mul: machine.ResourceSpec{Lat: 2, DII: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if fp := MachineFingerprint(slow); fp == base {
		t.Error("fingerprint ignores FU timing")
	}
	if fp := MachineFingerprint(mustMachine(t, "[1,1|1,1]")); fp != base {
		t.Error("fingerprint of identical machines differs")
	}
}

func TestKeyStringRoundTrip(t *testing.T) {
	k := testKey("round-trip")
	got, err := ParseKey(k.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != k {
		t.Errorf("ParseKey(String) = %v, want %v", got, k)
	}
	if _, err := ParseKey("not-hex"); err == nil {
		t.Error("ParseKey accepted non-hex input")
	}
	if _, err := ParseKey("abcd"); err == nil {
		t.Error("ParseKey accepted a short key")
	}
}
