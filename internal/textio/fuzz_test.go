package textio

import (
	"testing"

	"vliwbind/internal/dfg"
)

// FuzzParse checks the parser never panics and that everything it
// accepts is a structurally valid graph that survives a print/parse
// round trip. Run the seed corpus with `go test`; fuzz deeper with
// `go test -fuzz=FuzzParse ./internal/textio`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"dfg g\n",
		"dfg g\nin x y\nop a add x y\nout a\n",
		"dfg g\nin x\nop a muli 0.5 x\nop b move a\nout b\n",
		"dfg g\nin x\nop a neg x\nop b neg a\nop c add a b\nout c\n",
		"# comment\n\ndfg g\nin x\nop a neg x\nout a\nout a\n",
		"dfg g\nin x\nop a muli 1e308 x\nout a\n",
		"dfg g\nin x\nop a add x x\nout a\n",
		"in x\nop a neg x\n",
		"dfg g\nop a add b c\n",
		"dfg g\nin x\nop x neg x\n",
		"dfg g\nin x\nop a muli nan x\n",
		"zap\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ParseString(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if verr := dfg.Validate(g); verr != nil {
			t.Fatalf("parser accepted an invalid graph: %v\ninput:\n%s", verr, input)
		}
		printed := PrintString(g)
		g2, err := ParseString(printed)
		if err != nil {
			t.Fatalf("printed form does not reparse: %v\nprinted:\n%s", err, printed)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumInputs() != g.NumInputs() ||
			len(g2.Outputs()) != len(g.Outputs()) {
			t.Fatalf("round trip changed shape: %d/%d/%d vs %d/%d/%d",
				g.NumNodes(), g.NumInputs(), len(g.Outputs()),
				g2.NumNodes(), g2.NumInputs(), len(g2.Outputs()))
		}
	})
}
