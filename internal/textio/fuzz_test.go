package textio

import (
	"math"
	"testing"

	"vliwbind/internal/dfg"
	"vliwbind/internal/kernels"
)

// FuzzParse checks the parser never panics and that everything it
// accepts is a structurally valid graph that survives a print/parse
// round trip. Run the seed corpus with `go test`; fuzz deeper with
// `go test -fuzz=FuzzParse ./internal/textio`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"dfg g\n",
		"dfg g\nin x y\nop a add x y\nout a\n",
		"dfg g\nin x\nop a muli 0.5 x\nop b move a\nout b\n",
		"dfg g\nin x\nop a neg x\nop b neg a\nop c add a b\nout c\n",
		"# comment\n\ndfg g\nin x\nop a neg x\nout a\nout a\n", // now rejected: duplicate output
		"dfg g\nin x\nop a neg x\nout a a\n",                  // rejected: duplicate on one line
		"dfg g\nin x\nop a muli 1e308 x\nout a\n",
		"dfg g\nin x\nop a add x x\nout a\n",
		"in x\nop a neg x\n",
		"dfg g\nop a add b c\n",
		"dfg g\nin x\nop x neg x\n",
		"dfg g\nin x\nop a muli nan x\n",
		"zap\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ParseString(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if verr := dfg.Validate(g); verr != nil {
			t.Fatalf("parser accepted an invalid graph: %v\ninput:\n%s", verr, input)
		}
		printed := PrintString(g)
		g2, err := ParseString(printed)
		if err != nil {
			t.Fatalf("printed form does not reparse: %v\nprinted:\n%s", err, printed)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumInputs() != g.NumInputs() ||
			len(g2.Outputs()) != len(g.Outputs()) {
			t.Fatalf("round trip changed shape: %d/%d/%d vs %d/%d/%d",
				g.NumNodes(), g.NumInputs(), len(g.Outputs()),
				g2.NumNodes(), g2.NumInputs(), len(g2.Outputs()))
		}
	})
}

// FuzzTextioRoundTrip: anything the parser accepts must print to a
// fixpoint (print ∘ parse ∘ print == print) and keep reference semantics
// bit-identical across the round trip. Seeded from the full kernel suite
// plus generated random DAGs, so the fuzzer starts from realistic files.
func FuzzTextioRoundTrip(f *testing.F) {
	for _, k := range kernels.All() {
		f.Add(PrintString(k.Build()))
	}
	for _, seed := range []int64{1, 7, 42} {
		f.Add(PrintString(kernels.Random(kernels.RandomConfig{Ops: 24, Seed: seed})))
	}
	f.Add("dfg g\nin x y\nop a add x y\nop m move a\nout m a\n")
	f.Add("dfg g\nin x\nop a muli -0.25 x\nop s st a\nop l ld s\nout l\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ParseString(input)
		if err != nil {
			return
		}
		printed := PrintString(g)
		g2, err := ParseString(printed)
		if err != nil {
			t.Fatalf("printed form does not reparse: %v\nprinted:\n%s", err, printed)
		}
		if again := PrintString(g2); again != printed {
			t.Fatalf("print is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", printed, again)
		}
		in := make([]float64, g.NumInputs())
		for i := range in {
			in[i] = float64(i%7) - 3
		}
		o1, err1 := dfg.EvalOutputs(g, in)
		o2, err2 := dfg.EvalOutputs(g2, in)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("eval errors diverge across round trip: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if len(o1) != len(o2) {
			t.Fatalf("output counts diverge: %d vs %d", len(o1), len(o2))
		}
		for i := range o1 {
			if math.Float64bits(o1[i]) != math.Float64bits(o2[i]) {
				t.Fatalf("output %d diverges across round trip: %v vs %v", i, o1[i], o2[i])
			}
		}
	})
}
