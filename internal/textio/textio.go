// Package textio reads and writes dataflow graphs in a small line-based
// text format, so the CLI tools can exchange kernels with files:
//
//	# comment
//	dfg NAME
//	in x0 x1 x2
//	op v1 add x0 x1
//	op v2 muli 0.4904 v1
//	op t1 move v2
//	out v1 t1
//
// One "dfg" line, one optional "in" line (input names), one "op" line per
// operation in dependence order (operands name earlier ops or inputs;
// "muli" takes its immediate before the operand), and one optional "out"
// line listing live-out operations. Printing a parsed graph reproduces an
// equivalent file (round-trip stable).
package textio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"vliwbind/internal/dfg"
)

// Parse reads one graph in the text format.
func Parse(r io.Reader) (*dfg.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var b *dfg.Builder
	vals := make(map[string]dfg.Value)
	var outs []string
	outSeen := make(map[string]bool)
	// Output names resolve only after the whole file is read, so the
	// deferred errors below need the line each name appeared on.
	outLine := make(map[string]int)
	lineNo := 0
	errf := func(format string, args ...any) error {
		return fmt.Errorf("textio: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "dfg":
			if b != nil {
				return nil, errf("duplicate dfg line")
			}
			if len(fields) != 2 {
				return nil, errf("dfg line needs exactly one name")
			}
			b = dfg.NewBuilder(fields[1])
		case "in":
			if b == nil {
				return nil, errf("in before dfg")
			}
			for _, name := range fields[1:] {
				if _, dup := vals[name]; dup {
					return nil, errf("duplicate name %q", name)
				}
				vals[name] = b.Input(name)
			}
		case "op":
			if b == nil {
				return nil, errf("op before dfg")
			}
			if len(fields) < 3 {
				return nil, errf("op line needs a name and a type")
			}
			name := fields[1]
			if _, dup := vals[name]; dup {
				return nil, errf("duplicate name %q", name)
			}
			op, err := dfg.ParseOpType(fields[2])
			if err != nil {
				return nil, errf("%v", err)
			}
			args := fields[3:]
			imm := 0.0
			if op.HasImm() {
				if len(args) == 0 {
					return nil, errf("%s needs an immediate", op)
				}
				imm, err = strconv.ParseFloat(args[0], 64)
				if err != nil {
					return nil, errf("bad immediate %q", args[0])
				}
				args = args[1:]
			}
			if len(args) != op.NumOperands() {
				return nil, errf("%s takes %d operands, got %d", op, op.NumOperands(), len(args))
			}
			operands := make([]dfg.Value, len(args))
			for i, a := range args {
				v, ok := vals[a]
				if !ok {
					return nil, errf("unknown operand %q", a)
				}
				operands[i] = v
			}
			var v dfg.Value
			if op == dfg.OpMove {
				v = b.NamedMove(name, operands[0])
			} else {
				v = b.Named(name, op, imm, operands...)
			}
			vals[name] = v
		case "out":
			if b == nil {
				return nil, errf("out before dfg")
			}
			// Reject repeats across all out lines: the builder would
			// silently register the node as an output once, breaking
			// the input/output correspondence the file claims.
			for _, name := range fields[1:] {
				if outSeen[name] {
					return nil, errf("duplicate output %q", name)
				}
				outSeen[name] = true
				outLine[name] = lineNo
				outs = append(outs, name)
			}
		default:
			return nil, errf("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("textio: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("textio: no dfg line found")
	}
	for _, name := range outs {
		v, ok := vals[name]
		if !ok {
			return nil, fmt.Errorf("textio: line %d: unknown output %q", outLine[name], name)
		}
		if !v.IsNode() {
			return nil, fmt.Errorf("textio: line %d: output %q is an input, not an op", outLine[name], name)
		}
		b.Output(v)
	}
	g := b.Graph()
	if err := dfg.Validate(g); err != nil {
		return nil, fmt.Errorf("textio: parsed graph invalid: %w", err)
	}
	return g, nil
}

// ParseString parses a graph from a string.
func ParseString(s string) (*dfg.Graph, error) { return Parse(strings.NewReader(s)) }

// Print writes the graph in the text format. Nodes are emitted in ID
// order, which the builder guarantees is a dependence order.
func Print(w io.Writer, g *dfg.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "dfg %s\n", g.Name())
	if g.NumInputs() > 0 {
		bw.WriteString("in")
		for i := 0; i < g.NumInputs(); i++ {
			fmt.Fprintf(bw, " %s", g.InputName(i))
		}
		bw.WriteByte('\n')
	}
	for _, n := range g.Nodes() {
		fmt.Fprintf(bw, "op %s %s", n.Name(), n.Op())
		if n.Op().HasImm() {
			fmt.Fprintf(bw, " %g", n.Imm())
		}
		for _, o := range n.Operands() {
			if o.IsInput() {
				fmt.Fprintf(bw, " %s", g.InputName(o.Input()))
			} else {
				fmt.Fprintf(bw, " %s", o.Node().Name())
			}
		}
		bw.WriteByte('\n')
	}
	if outs := g.Outputs(); len(outs) > 0 {
		bw.WriteString("out")
		for _, n := range outs {
			fmt.Fprintf(bw, " %s", n.Name())
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// PrintString renders the graph to a string.
func PrintString(g *dfg.Graph) string {
	var sb strings.Builder
	_ = Print(&sb, g)
	return sb.String()
}
