package textio

import (
	"strings"
	"testing"

	"vliwbind/internal/dfg"
	"vliwbind/internal/kernels"
)

const sample = `
# a small kernel
dfg demo
in x y
op v1 add x y
op v2 muli 0.5 v1
op v3 sub v2 y
op t1 move v1
op v4 add v3 t1
out v4 v2
`

func TestParseSample(t *testing.T) {
	g, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "demo" {
		t.Errorf("name = %q", g.Name())
	}
	if g.NumNodes() != 5 || g.NumOps() != 4 || g.NumMoves() != 1 {
		t.Errorf("nodes/ops/moves = %d/%d/%d", g.NumNodes(), g.NumOps(), g.NumMoves())
	}
	if g.NumInputs() != 2 {
		t.Errorf("inputs = %d", g.NumInputs())
	}
	v2 := g.NodeByName("v2")
	if v2.Op() != dfg.OpMulImm || v2.Imm() != 0.5 {
		t.Errorf("v2 = %s imm %v", v2.Op(), v2.Imm())
	}
	if len(g.Outputs()) != 2 || g.Outputs()[0].Name() != "v4" {
		t.Errorf("outputs = %v", g.Outputs())
	}
	t1 := g.NodeByName("t1")
	if !t1.IsMove() {
		t.Error("t1 not parsed as move")
	}
}

func TestRoundTrip(t *testing.T) {
	g, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	text := PrintString(g)
	g2, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if PrintString(g2) != text {
		t.Errorf("round trip unstable:\n%s\nvs\n%s", text, PrintString(g2))
	}
}

func TestRoundTripKernels(t *testing.T) {
	for _, k := range kernels.All() {
		g := k.Build()
		text := PrintString(g)
		g2, err := ParseString(text)
		if err != nil {
			t.Errorf("%s: %v", k.Name, err)
			continue
		}
		s1, s2 := g.Stats(), g2.Stats()
		if s1.NumOps != s2.NumOps || s1.CriticalPath != s2.CriticalPath || s1.NumComponents != s2.NumComponents {
			t.Errorf("%s: stats changed across round trip: %+v vs %+v", k.Name, s1, s2)
		}
		// Same semantics on a probe input.
		in := make([]float64, g.NumInputs())
		for i := range in {
			in[i] = float64(i) - 2
		}
		o1, err1 := dfg.EvalOutputs(g, in)
		o2, err2 := dfg.EvalOutputs(g2, in)
		if err1 != nil || err2 != nil {
			t.Errorf("%s: eval errors %v %v", k.Name, err1, err2)
			continue
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Errorf("%s: output %d differs: %v vs %v", k.Name, i, o1[i], o2[i])
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no dfg":            "in x\n",
		"op before dfg":     "op v1 add x y\n",
		"in before dfg":     "in x\n dfg g\n",
		"dup dfg":           "dfg a\ndfg b\n",
		"dfg extra":         "dfg a b\n",
		"unknown op":        "dfg g\nin x\nop v1 frob x\n",
		"unknown operand":   "dfg g\nin x\nop v1 add x z\n",
		"dup name":          "dfg g\nin x\nop x add x x\n",
		"dup op name":       "dfg g\nin x\nop v neg x\nop v neg x\n",
		"bad arity":         "dfg g\nin x\nop v1 add x\n",
		"missing imm":       "dfg g\nin x\nop v1 muli\n",
		"bad imm":           "dfg g\nin x\nop v1 muli abc x\n",
		"unknown out":       "dfg g\nin x\nop v1 neg x\nout v9\n",
		"input as out":      "dfg g\nin x\nop v1 neg x\nout x\n",
		"short op":          "dfg g\nop v1\n",
		"unknown directive": "dfg g\nzap v1\n",
	}
	for name, text := range cases {
		if _, err := ParseString(text); err == nil {
			t.Errorf("%s: parse succeeded, want error", name)
		}
	}
}

// TestParseErrorPositions pins the 1-based line number in parse errors,
// counting blank and comment lines the way an editor does. The deferred
// output-resolution errors (raised only after the whole file is read)
// must point at the out line the name appeared on, not at end-of-file.
func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		name, text        string
		wantPos, wantWhat string
	}{
		{"dup dfg", "dfg a\ndfg b\n", "line 2", "duplicate dfg"},
		{"unknown op after comment", "# header\ndfg g\nin x\nop v1 frob x\n", "line 4", "frob"},
		{"blank lines counted", "dfg g\n\n\nin x\n\nop v1 add x z\n", "line 6", "unknown operand"},
		{"comment lines counted", "dfg g\n# one\n# two\nin x\nop v1 add x\n", "line 5", "operands"},
		{"unknown directive", "dfg g\nin x\n\nzap v1\n", "line 4", "unknown directive"},
		{"unknown output names its out line", "dfg g\nin x\nop a neg x\n\nout z\n", "line 5", "unknown output"},
		{"input as output names its out line", "# hdr\ndfg g\nin x\nop a neg x\nout a\nout x\n", "line 6", "is an input"},
		{"dup output across a comment", "dfg g\nin x\nop a neg x\nout a\n# gap\nout a\n", "line 6", "duplicate output"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseString(c.text)
			if err == nil {
				t.Fatal("parse succeeded, want positioned error")
			}
			msg := err.Error()
			if !strings.Contains(msg, c.wantPos) || !strings.Contains(msg, c.wantWhat) {
				t.Errorf("err = %q, want it to name %q and %q", msg, c.wantPos, c.wantWhat)
			}
		})
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	g, err := ParseString("# header\n\ndfg g\n  # indented comment\nin x\n\nop v1 neg x\nout v1\n")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumOps() != 1 {
		t.Errorf("ops = %d", g.NumOps())
	}
}

func TestMultipleOutLines(t *testing.T) {
	g, err := ParseString("dfg g\nin x\nop a neg x\nop b neg x\nout a\nout b\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Outputs()) != 2 {
		t.Errorf("outputs = %d, want 2", len(g.Outputs()))
	}
}

// TestDuplicateOutputRejected: repeating a name on out lines used to be
// silently collapsed by the builder, so the file claimed more live-outs
// than the graph had. Parse now rejects the repeat outright.
func TestDuplicateOutputRejected(t *testing.T) {
	for name, text := range map[string]string{
		"same line":    "dfg g\nin x\nop a neg x\nout a a\n",
		"across lines": "dfg g\nin x\nop a neg x\nout a\nout a\n",
	} {
		if _, err := ParseString(text); err == nil || !strings.Contains(err.Error(), "duplicate output") {
			t.Errorf("%s: err = %v, want duplicate-output rejection", name, err)
		}
	}
	// Distinct names over multiple out lines remain legal, and a printed
	// graph (one mention per output) still reparses cleanly.
	g := mustParse(t, "dfg g\nin x\nop a neg x\nop b neg a\nout b a\n")
	if _, err := ParseString(PrintString(g)); err != nil {
		t.Errorf("round trip broken by duplicate-output check: %v", err)
	}
}

func TestPrintImmPrecision(t *testing.T) {
	b := dfg.NewBuilder("p")
	x := b.Input("x")
	b.Output(b.MulImm(x, 0.49039264020161522))
	g := b.Graph()
	g2, err := ParseString(PrintString(g))
	if err != nil {
		t.Fatal(err)
	}
	if got := g2.Nodes()[0].Imm(); got != g.Nodes()[0].Imm() {
		t.Errorf("immediate lost precision: %v vs %v", got, g.Nodes()[0].Imm())
	}
}

func TestParseStopsOnForwardReference(t *testing.T) {
	if _, err := ParseString("dfg g\nin x\nop a add x b\nop b neg x\n"); err == nil {
		t.Error("forward reference accepted")
	}
	if !strings.Contains(PrintString(mustParse(t, sample)), "dfg demo") {
		t.Error("header missing")
	}
}

func mustParse(t *testing.T, s string) *dfg.Graph {
	t.Helper()
	g, err := ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSpillOpsRoundTrip(t *testing.T) {
	// Spill stores and reloads (inserted by internal/codegen) must
	// survive the text format like any other op.
	src := "dfg sp\nin x y\nop a add x y\nop s st a\nop l ld s\nop b add l y\nout b\n"
	g, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeByName("s").Op() != dfg.OpStore || g.NodeByName("l").Op() != dfg.OpLoad {
		t.Fatal("spill ops parsed wrong")
	}
	g2, err := ParseString(PrintString(g))
	if err != nil {
		t.Fatal(err)
	}
	out, err := dfg.EvalOutputs(g2, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 8 { // (2+3) stored/loaded, +3
		t.Errorf("spilled round trip computes %v, want 8", out[0])
	}
}
