// Package vliwsim executes a bound-and-scheduled dataflow graph on a
// cycle-accurate model of the clustered datapath: per-cluster register
// files, functional-unit pipelines and bus channels. It is the end-to-end
// check of the whole stack — a schedule passes only if every operand is
// physically present in the consuming cluster's register file at issue
// time, every resource respects its capacity and data-introduction
// interval, and the computed outputs equal the reference dataflow
// evaluation (dfg.Eval).
//
// sched.Check verifies dependence and capacity arithmetic; Execute
// additionally catches cluster-placement errors (a value consumed in a
// cluster it was never produced in or transferred to), which is precisely
// the class of bug a binding algorithm can introduce.
package vliwsim

import (
	"fmt"
	"sort"

	"vliwbind/internal/dfg"
	"vliwbind/internal/sched"
)

// Event records one issue in the execution trace.
type Event struct {
	Cycle   int
	Cluster int // destination cluster for moves
	Unit    int
	Node    *dfg.Node
	Value   float64 // result value (available at Cycle + lat)
}

// Trace is the cycle-ordered issue log of one execution.
type Trace struct {
	Events []Event
	Cycles int
}

// At returns the events issued at the given cycle.
func (t *Trace) At(cycle int) []Event {
	var out []Event
	for _, e := range t.Events {
		if e.Cycle == cycle {
			out = append(out, e)
		}
	}
	return out
}

// Execute runs the schedule on concrete inputs and returns the values of
// the graph's outputs (in output order) plus the execution trace. External
// inputs are modeled as preloaded into every cluster's register file, per
// the paper's block-level abstraction; every internal value must reach a
// consuming cluster through execution or an explicit move.
func Execute(s *sched.Schedule, inputs []float64) ([]float64, *Trace, error) {
	g, dp := s.Graph, s.Datapath
	if len(inputs) != g.NumInputs() {
		return nil, nil, fmt.Errorf("vliwsim: graph has %d inputs, got %d", g.NumInputs(), len(inputs))
	}

	// availAt[c][id] is the cycle the value of node id becomes readable
	// in cluster c; -1 when it never does.
	nc := dp.NumClusters()
	availAt := make([][]int, nc)
	for c := range availAt {
		availAt[c] = make([]int, g.NumNodes())
		for i := range availAt[c] {
			availAt[c][i] = -1
		}
	}
	vals := make([]float64, g.NumNodes())

	// Issue in time order; ties in dependence (ID) order so producers
	// precede same-cycle consumers in the loop (legal only for lat >= 1,
	// which machine enforces).
	order := append([]*dfg.Node(nil), g.Nodes()...)
	sort.SliceStable(order, func(i, j int) bool {
		si, sj := s.Start[order[i].ID()], s.Start[order[j].ID()]
		if si != sj {
			return si < sj
		}
		return order[i].ID() < order[j].ID()
	})

	// Resource occupancy bookkeeping: unit busy until cycle (exclusive).
	type unitKey struct {
		cluster int // -1 for bus
		fu      dfg.FUType
		unit    int
	}
	busyUntil := make(map[unitKey]int)

	trace := &Trace{}
	readArg := func(n *dfg.Node, v dfg.Value, c, cycle int) (float64, error) {
		if v.IsInput() {
			return inputs[v.Input()], nil
		}
		u := v.Node()
		at := availAt[c][u.ID()]
		if at < 0 {
			return 0, fmt.Errorf("vliwsim: %s issues in cluster %d but operand %s never arrives there",
				n.Name(), c, u.Name())
		}
		if at > cycle {
			return 0, fmt.Errorf("vliwsim: %s issues at cycle %d but operand %s arrives in cluster %d only at %d",
				n.Name(), cycle, u.Name(), c, at)
		}
		return vals[u.ID()], nil
	}

	for _, n := range order {
		cycle := s.Start[n.ID()]
		if cycle < 0 {
			return nil, nil, fmt.Errorf("vliwsim: node %s was never scheduled", n.Name())
		}
		lat := dp.Latency(n.Op())
		if n.IsMove() {
			src := n.TransferFor()
			if src == nil {
				return nil, nil, fmt.Errorf("vliwsim: move %s has no producer metadata", n.Name())
			}
			from := s.Cluster[src.ID()]
			dest := s.Cluster[n.ID()]
			x, err := readArg(n, n.Operands()[0], from, cycle)
			if err != nil {
				return nil, nil, err
			}
			// Re-derive the route from the clusters alone — independent of
			// what the scheduler recorded — and walk it hop by hop: each
			// hop must ride a channel of the right link, and the value
			// only lands in the destination register file after the full
			// route latency. A schedule that claims a wrong route cannot
			// execute.
			route := dp.Route(from, dest)
			chans := []int{s.Unit[n.ID()]}
			if s.HopUnits != nil && s.HopUnits[n.ID()] != nil {
				chans = s.HopUnits[n.ID()]
			}
			if route != nil {
				if len(chans) != len(route) {
					return nil, nil, fmt.Errorf("vliwsim: move %s records %d hop channels for a %d-hop c%d→c%d route",
						n.Name(), len(chans), len(route), from, dest)
				}
				lat = len(route) * dp.MoveLat()
			}
			for h, ch := range chans {
				if route != nil && dp.LinkOfChannel(ch) != route[h] {
					return nil, nil, fmt.Errorf("vliwsim: move %s hop %d on channel %d, which is not on link %s",
						n.Name(), h, ch, dp.LinkName(route[h]))
				}
				at := cycle + h*dp.MoveLat()
				key := unitKey{-1, dfg.FUBus, ch}
				if busyUntil[key] > at {
					return nil, nil, fmt.Errorf("vliwsim: channel %d busy at cycle %d (move %s hop %d)", ch, at, n.Name(), h)
				}
				busyUntil[key] = at + dp.MoveDII()
			}
			vals[n.ID()] = x
			availAt[dest][n.ID()] = cycle + lat
			// The transported producer value itself also becomes usable
			// in the destination cluster: consumers reference the move
			// node, but availability of the underlying datum is what the
			// register file holds.
			if availAt[dest][src.ID()] < 0 || availAt[dest][src.ID()] > cycle+lat {
				availAt[dest][src.ID()] = cycle + lat
			}
			trace.Events = append(trace.Events, Event{cycle, dest, s.Unit[n.ID()], n, x})
		} else {
			c := s.Cluster[n.ID()]
			if !dp.Supports(c, n.Op()) {
				return nil, nil, fmt.Errorf("vliwsim: %s (%s) issued in cluster %d with no %s unit",
					n.Name(), n.Op(), c, n.FUType())
			}
			args := make([]float64, len(n.Operands()))
			for i, v := range n.Operands() {
				x, err := readArg(n, v, c, cycle)
				if err != nil {
					return nil, nil, err
				}
				args[i] = x
			}
			key := unitKey{c, n.FUType(), s.Unit[n.ID()]}
			if busyUntil[key] > cycle {
				return nil, nil, fmt.Errorf("vliwsim: cluster %d %s unit %d busy at cycle %d (%s)",
					c, n.FUType(), s.Unit[n.ID()], cycle, n.Name())
			}
			busyUntil[key] = cycle + dp.DII(n.Op())
			var y float64
			switch n.Op() {
			case dfg.OpAdd:
				y = args[0] + args[1]
			case dfg.OpSub:
				y = args[0] - args[1]
			case dfg.OpNeg:
				y = -args[0]
			case dfg.OpMul:
				y = args[0] * args[1]
			case dfg.OpMulImm:
				y = n.Imm() * args[0]
			case dfg.OpStore, dfg.OpLoad:
				// Spill traffic through the cluster's local memory; the
				// datum passes through unchanged.
				y = args[0]
			default:
				return nil, nil, fmt.Errorf("vliwsim: unexecutable op %s", n.Op())
			}
			vals[n.ID()] = y
			availAt[c][n.ID()] = cycle + lat
			trace.Events = append(trace.Events, Event{cycle, c, s.Unit[n.ID()], n, y})
		}
		if end := cycle + lat; end > trace.Cycles {
			trace.Cycles = end
		}
	}
	if trace.Cycles != s.L {
		return nil, nil, fmt.Errorf("vliwsim: executed length %d disagrees with schedule L=%d", trace.Cycles, s.L)
	}

	outs := make([]float64, len(g.Outputs()))
	for i, n := range g.Outputs() {
		outs[i] = vals[n.ID()]
	}
	return outs, trace, nil
}

// Verify executes the schedule on the given inputs and checks the outputs
// against the reference dataflow evaluation of the graph, returning a
// descriptive error on any divergence.
func Verify(s *sched.Schedule, inputs []float64) error {
	got, _, err := Execute(s, inputs)
	if err != nil {
		return err
	}
	want, err := dfg.EvalOutputs(s.Graph, inputs)
	if err != nil {
		return err
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("vliwsim: output %d = %v, reference evaluation says %v", i, got[i], want[i])
		}
	}
	return nil
}
