package vliwsim

import (
	"strings"
	"testing"

	"vliwbind/internal/bind"
	"vliwbind/internal/dfg"
	"vliwbind/internal/kernels"
	"vliwbind/internal/machine"
	"vliwbind/internal/sched"
)

func scheduleFor(t *testing.T, g *dfg.Graph, dp *machine.Datapath, binding []int) *sched.Schedule {
	t.Helper()
	res, err := bind.Evaluate(g, dp, binding)
	if err != nil {
		t.Fatal(err)
	}
	return res.Schedule
}

func TestExecuteSimpleCrossCluster(t *testing.T) {
	b := dfg.NewBuilder("x")
	x, y := b.Input("x"), b.Input("y")
	v0 := b.Add(x, y)  // cluster 0
	v1 := b.Mul(v0, y) // cluster 1: needs a move
	b.Output(v1)
	g := b.Graph()
	dp := machine.MustParse("[1,1|1,1]", machine.Config{NumBuses: 1})
	s := scheduleFor(t, g, dp, []int{0, 1})
	out, tr, err := Execute(s, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 15 {
		t.Errorf("out = %v, want [15]", out)
	}
	// add at 0, move at 1, mul at 2 -> 3 cycles.
	if tr.Cycles != 3 {
		t.Errorf("cycles = %d, want 3", tr.Cycles)
	}
	if len(tr.At(0)) != 1 || tr.At(0)[0].Node.Op() != dfg.OpAdd {
		t.Errorf("cycle 0 events wrong: %+v", tr.At(0))
	}
}

func TestExecuteAllKernelsAllAlgorithms(t *testing.T) {
	// The full stack: every kernel, bound by B-ITER, scheduled,
	// executed, and compared to the reference evaluation.
	dp := machine.MustParse("[2,1|1,1]", machine.Config{})
	for _, k := range kernels.All() {
		g := k.Build()
		res, err := bind.Bind(g, dp, bind.Options{Seeds: 1, MaxStretch: -1})
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		in := make([]float64, g.NumInputs())
		for i := range in {
			in[i] = float64((i*13)%9) - 4
		}
		// Outputs of the bound graph mirror the original's.
		if err := Verify(res.Schedule, in); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
}

func TestExecuteDetectsMissingTransfer(t *testing.T) {
	// Hand-build an illegal schedule: consumer in cluster 1 but the
	// value never moved there. sched.List won't produce this, so forge
	// the cluster assignment afterwards.
	b := dfg.NewBuilder("bad")
	x, y := b.Input("x"), b.Input("y")
	v0 := b.Add(x, y)
	v1 := b.Add(v0, y)
	b.Output(v1)
	g := b.Graph()
	dp := machine.MustParse("[1,1|1,1]", machine.Config{})
	s := scheduleFor(t, g, dp, []int{0, 0})
	s.Cluster[v1.Node().ID()] = 1 // corrupt: v1 now claims cluster 1
	if err := Verify(s, []float64{1, 2}); err == nil {
		t.Error("missing transfer not detected")
	} else if !strings.Contains(err.Error(), "never arrives") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestExecuteDetectsEarlyIssue(t *testing.T) {
	b := dfg.NewBuilder("early")
	x, y := b.Input("x"), b.Input("y")
	v0 := b.Add(x, y)
	v1 := b.Add(v0, y)
	b.Output(v1)
	g := b.Graph()
	dp := machine.MustParse("[1,1]", machine.Config{NumBuses: 1})
	s := scheduleFor(t, g, dp, []int{0, 0})
	s.Start[v1.Node().ID()] = 0 // issue before operand ready
	if _, _, err := Execute(s, []float64{1, 2}); err == nil {
		t.Error("early issue not detected")
	}
}

func TestExecuteDetectsOversubscription(t *testing.T) {
	b := dfg.NewBuilder("over")
	x, y := b.Input("x"), b.Input("y")
	a1 := b.Add(x, y)
	a2 := b.Sub(x, y)
	b.Output(a1)
	b.Output(a2)
	g := b.Graph()
	dp := machine.MustParse("[1,1]", machine.Config{NumBuses: 1})
	s := scheduleFor(t, g, dp, []int{0, 0})
	// Force both adds onto unit 0 at cycle 0.
	s.Start[a1.Node().ID()] = 0
	s.Start[a2.Node().ID()] = 0
	s.Unit[a1.Node().ID()] = 0
	s.Unit[a2.Node().ID()] = 0
	if _, _, err := Execute(s, []float64{1, 2}); err == nil {
		t.Error("unit oversubscription not detected")
	}
}

func TestExecuteDetectsWrongClusterForOp(t *testing.T) {
	b := dfg.NewBuilder("wc")
	x := b.Input("x")
	m := b.Mul(x, x)
	b.Output(m)
	g := b.Graph()
	dp := machine.MustParse("[1,0|1,1]", machine.Config{})
	s := scheduleFor(t, g, dp, []int{1})
	s.Cluster[m.Node().ID()] = 0 // no multiplier there
	if _, _, err := Execute(s, []float64{3}); err == nil {
		t.Error("op in unsupporting cluster not detected")
	}
}

func TestExecuteInputCount(t *testing.T) {
	b := dfg.NewBuilder("in")
	x := b.Input("x")
	b.Output(b.Neg(x))
	g := b.Graph()
	dp := machine.MustParse("[1,1]", machine.Config{NumBuses: 1})
	s := scheduleFor(t, g, dp, []int{0})
	if _, _, err := Execute(s, nil); err == nil {
		t.Error("wrong input count accepted")
	}
}

func TestMoveLatencyRespected(t *testing.T) {
	// lat(move)=3: consumer can only start 3 cycles after the move.
	b := dfg.NewBuilder("ml")
	x, y := b.Input("x"), b.Input("y")
	v0 := b.Add(x, y)
	v1 := b.Add(v0, y)
	b.Output(v1)
	g := b.Graph()
	dp := machine.MustParse("[1,1|1,1]", machine.Config{NumBuses: 1, MoveLat: 3})
	s := scheduleFor(t, g, dp, []int{0, 1})
	out, tr, err := Execute(s, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 5 {
		t.Errorf("out = %v, want 5", out[0])
	}
	// add(1) + move(3) + add(1): 5 cycles.
	if tr.Cycles != 5 {
		t.Errorf("cycles = %d, want 5", tr.Cycles)
	}
}

func TestTraceEventsComplete(t *testing.T) {
	g := kernels.ARF()
	dp := machine.MustParse("[1,1|1,1]", machine.Config{})
	res, err := bind.Bind(g, dp, bind.Options{Seeds: 1, MaxStretch: -1})
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, g.NumInputs())
	_, tr, err := Execute(res.Schedule, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != res.Bound.NumNodes() {
		t.Errorf("trace has %d events for %d nodes", len(tr.Events), res.Bound.NumNodes())
	}
}
