package vliwbind_test

import (
	"testing"

	"vliwbind"
)

// TestFullPipelineSweep drives the complete stack on every Table 1 row:
// B-INIT binding → bound graph → list schedule → legality check →
// register allocation → clobber check → cycle-accurate execution →
// comparison against the reference dataflow evaluation. Any inconsistency
// anywhere in the pipeline fails here.
func TestFullPipelineSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline sweep skipped in -short mode")
	}
	for _, r := range vliwbind.Table1() {
		r := r
		t.Run(r.Name(), func(t *testing.T) {
			k, err := vliwbind.KernelByName(r.Kernel)
			if err != nil {
				t.Fatal(err)
			}
			g := k.Build()
			dp, err := r.Datapath()
			if err != nil {
				t.Fatal(err)
			}
			res, err := vliwbind.InitialBind(g, dp, vliwbind.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := vliwbind.CheckSchedule(res.Schedule); err != nil {
				t.Fatalf("schedule: %v", err)
			}
			if err := vliwbind.ValidateGraph(res.Bound); err != nil {
				t.Fatalf("bound graph: %v", err)
			}
			alloc, err := vliwbind.AllocateRegisters(res.Schedule, 0)
			if err != nil {
				t.Fatalf("allocation: %v", err)
			}
			if err := vliwbind.CheckRegisters(res.Schedule, alloc); err != nil {
				t.Fatalf("register check: %v", err)
			}
			in := make([]float64, g.NumInputs())
			for i := range in {
				in[i] = float64((i*7)%11) - 5
			}
			if err := vliwbind.VerifySchedule(res.Schedule, in); err != nil {
				t.Fatalf("execution: %v", err)
			}
			// Register files of real clustered DSPs hold 16–32 entries;
			// the paper's abstraction must stay within that.
			press := vliwbind.RegisterPressure(res.Schedule)
			if press.Peak > 32 {
				t.Errorf("register pressure %d exceeds a realistic file", press.Peak)
			}
		})
	}
}
