package vliwbind

import "testing"

// The pr8 trajectory pair: a full B-ITER search versus the same request
// answered from a warm result store. The hit path still pays for
// canonicalization, key derivation, re-evaluation of the transplanted
// binding, and a full audit — the BENCH_pr8.json gate asserts that all
// of that together is still far cheaper than re-searching.

func benchSetup(b *testing.B) (*Graph, *Datapath) {
	b.Helper()
	g := KernelMust("EWF")
	dp, err := ParseDatapath("[2,1|1,1]", DatapathConfig{})
	if err != nil {
		b.Fatal(err)
	}
	return g, dp
}

func BenchmarkStoreColdBind(b *testing.B) {
	g, dp := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Bind(g, dp, Options{Parallelism: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreHit(b *testing.B) {
	g, dp := benchSetup(b)
	st := NewMemoryStore(0)
	var stats CacheStats
	opts := Options{Parallelism: 1, Store: st, Stats: &stats}
	if _, err := Bind(g, dp, opts); err != nil {
		b.Fatal(err) // warm the store
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Bind(g, dp, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if stats.StoreHits() != int64(b.N) {
		b.Fatalf("hit benchmark missed: %d hits over %d iterations", stats.StoreHits(), b.N)
	}
}
