package vliwbind

// Concurrent stress of the cross-request result store at daemon
// concurrency: many workers bind a mixed job list through one shared
// journal-backed store, exactly as vliwbindd's worker pool does. The
// invariants under load are the same as under a single caller — every
// served result passes a fresh audit, the CacheStats reconcile exactly
// (each facade call records one hit or one miss, never both, never
// neither), and the journal replays clean afterwards. Run with -race;
// the leakcheck pins the worker pools and the journal writer down.

import (
	"context"
	"sync"
	"testing"

	"vliwbind/internal/leakcheck"
)

// stressJob is one unit of work: either a bind or a modulo pipeline.
type stressJob struct {
	kernel string
	dp     string
	modulo bool
}

func stressJobs() []stressJob {
	var jobs []stressJob
	for _, k := range []string{"ARF", "EWF", "FFT"} {
		for _, dp := range []string{"[2,1|2,1]", "[2,1|1,1]", "[1,1|1,1|1,1]"} {
			jobs = append(jobs, stressJob{kernel: k, dp: dp})
		}
	}
	jobs = append(jobs, stressJob{kernel: "EWF", dp: "[2,1|2,1]", modulo: true})
	return jobs
}

// runStressPass drives every job `rounds` times across `workers`
// concurrent goroutines, auditing each answer, and returns the total
// number of facade calls made.
func runStressPass(t *testing.T, st *ResultStore, stats *CacheStats, workers, rounds int) int64 {
	t.Helper()
	jobs := stressJobs()
	feed := make(chan stressJob)
	var wg sync.WaitGroup
	var calls int64
	var mu sync.Mutex
	fail := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		t.Errorf(format, args...)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range feed {
				dp, err := ParseDatapath(job.dp, DatapathConfig{})
				if err != nil {
					fail("parse %q: %v", job.dp, err)
					continue
				}
				if job.modulo {
					ps, err := ModuloPipelineStored(context.Background(), ewfLoop(), dp,
						ModuloOptions{}, st, stats, nil)
					if err != nil {
						fail("modulo %v: %v", job, err)
						continue
					}
					if err := AuditPipelined(ps, 0); err != nil {
						fail("modulo %v served an uncertified schedule: %v", job, err)
					}
					continue
				}
				g := KernelMust(job.kernel)
				res, err := BindContext(context.Background(), g, dp,
					Options{Parallelism: 1, Store: st, Stats: stats})
				if err != nil {
					fail("bind %v: %v", job, err)
					continue
				}
				if err := AuditResult(res); err != nil {
					fail("bind %v served an uncertified result: %v", job, err)
				}
			}
		}()
	}
	for r := 0; r < rounds; r++ {
		for _, job := range jobs {
			feed <- job
			calls++
		}
	}
	close(feed)
	wg.Wait()
	return calls
}

// TestStoreConcurrentStress runs two passes at daemon concurrency over
// one journal-backed store: the first mixes cold searches with races on
// the same keys, the second must be answered entirely from audited
// hits. After both, the stats reconcile call-for-call and the journal
// replays without a single skipped or tombstoned line.
func TestStoreConcurrentStress(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-bind stress run")
	}
	leakcheck.Check(t)
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8 // vliwbindd's default shape: a pool the size of the machine
	var stats CacheStats
	calls := runStressPass(t, st, &stats, workers, 10)

	h, m, e := stats.StoreHits(), stats.StoreMisses(), stats.StoreEvicts()
	if h+m != calls {
		t.Errorf("stats do not reconcile: %d hits + %d misses != %d facade calls", h, m, calls)
	}
	if e != 0 {
		t.Errorf("%d evictions under a healthy store, want 0", e)
	}
	if h == 0 {
		t.Errorf("no store hits across %d calls over %d distinct keys", calls, len(stressJobs()))
	}
	distinct := int64(len(stressJobs()))
	if m < distinct {
		t.Errorf("%d misses, want at least one per distinct key (%d)", m, distinct)
	}

	// Second pass on a fresh counter: every key is resident now, so
	// every call must be an audited hit — racing readers never knock a
	// good entry out.
	var warm CacheStats
	calls2 := runStressPass(t, st, &warm, workers, 5)
	if h2, m2 := warm.StoreHits(), warm.StoreMisses(); h2 != calls2 || m2 != 0 {
		t.Errorf("warm pass: %d hits %d misses over %d calls, want all hits", h2, m2, calls2)
	}

	live := st.Len()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("reopen after stress: %v", err)
	}
	defer re.Close()
	rs := re.OpenStats()
	if rs.Skipped != 0 || rs.Tombstoned != 0 {
		t.Errorf("journal replay found %d skipped and %d tombstoned lines, want 0", rs.Skipped, rs.Tombstoned)
	}
	if re.Len() != live {
		t.Errorf("reopened store has %d entries, the live store had %d", re.Len(), live)
	}
	if live != len(stressJobs()) {
		t.Errorf("store holds %d entries, want one per distinct key (%d)", live, len(stressJobs()))
	}
}
