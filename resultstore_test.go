package vliwbind

// Facade-level tests of the cross-request result store: the audit-on-read
// invariant, the isomorphism property end to end, poison eviction, the
// degraded-publication guard, and the modulo path. These sit in the facade
// package on purpose — the trust logic under test lives here, not in
// internal/store.

import (
	"context"
	"sync"
	"testing"

	"vliwbind/internal/audit"
	"vliwbind/internal/bind"
	"vliwbind/internal/dfg"
	"vliwbind/internal/obs"
	"vliwbind/internal/store"
)

// recorder is a thread-safe Observer capturing store.* events.
type recorder struct {
	mu     sync.Mutex
	events []obs.Event
}

func (r *recorder) Event(e obs.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

func (r *recorder) count(typ string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Type == typ {
			n++
		}
	}
	return n
}

func storeTestDatapath(t *testing.T) *Datapath {
	t.Helper()
	dp, err := ParseDatapath("[2,1|1,1]", DatapathConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return dp
}

// TestStoreHitRoundTrip: the second bind of the same kernel against the
// same machine is served from the store, carries a fresh audit
// certificate, and reconciles with the CacheStats counters and the
// store.* observability events.
func TestStoreHitRoundTrip(t *testing.T) {
	g := KernelMust("EWF")
	dp := storeTestDatapath(t)
	st := NewMemoryStore(0)
	var stats CacheStats
	rec := &recorder{}
	opts := Options{Parallelism: 1, Store: st, Stats: &stats, Observer: rec}

	cold, err := Bind(g, dp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := stats.StoreHits(), stats.StoreMisses(); h != 0 || m != 1 {
		t.Fatalf("after cold bind: hits=%d misses=%d, want 0/1", h, m)
	}
	if st.Len() != 1 {
		t.Fatalf("store holds %d entries after cold bind, want 1", st.Len())
	}

	hit, err := Bind(g, dp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := stats.StoreHits(), stats.StoreMisses(); h != 1 || m != 1 {
		t.Fatalf("after warm bind: hits=%d misses=%d, want 1/1", h, m)
	}
	// Same graph, same binding: the adopted result re-evaluates to the
	// same metrics, and it must carry its own audit certificate.
	if hit.L() != cold.L() || hit.Moves() != cold.Moves() {
		t.Errorf("hit (L=%d M=%d) != cold (L=%d M=%d)", hit.L(), hit.Moves(), cold.L(), cold.Moves())
	}
	if err := audit.Audit(hit); err != nil {
		t.Errorf("served hit fails a fresh audit: %v", err)
	}
	if rec.count(obs.EvStoreMiss) != 1 || rec.count(obs.EvStoreHit) != 1 {
		t.Errorf("journal events miss=%d hit=%d, want 1/1",
			rec.count(obs.EvStoreMiss), rec.count(obs.EvStoreHit))
	}
	if stats.StoreEvicts() != 0 || rec.count(obs.EvStoreEvict) != 0 {
		t.Error("round-trip recorded spurious evictions")
	}
}

// buildScaledSum and buildScaledSumRenamed are isomorphic copies of one
// computation with different names, node order, input order, and
// commutative operand order — the cross-request test pair.
func buildScaledSum() *dfg.Graph {
	b := dfg.NewBuilder("scaledSum")
	x := b.Inputs("x", 4)
	s0 := b.Add(x[0], x[1])
	s1 := b.Add(x[2], x[3])
	d := b.Sub(s0, s1)
	m0 := b.MulImm(s0, 0.5)
	m1 := b.Mul(d, s1)
	y0 := b.Add(m0, m1)
	y1 := b.Sub(m1, d)
	b.Output(y0)
	b.Output(y1)
	return b.Graph()
}

func buildScaledSumRenamed() *dfg.Graph {
	b := dfg.NewBuilder("somethingElse")
	q3 := b.Input("q3") // = x3
	q2 := b.Input("q2") // = x2
	q1 := b.Input("q1") // = x1
	q0 := b.Input("q0") // = x0
	s1 := b.Named("hi", dfg.OpAdd, 0, q3, q2)
	s0 := b.Named("lo", dfg.OpAdd, 0, q1, q0)
	m0 := b.Named("halved", dfg.OpMulImm, 0.5, s0)
	d := b.Named("diff", dfg.OpSub, 0, s0, s1)
	m1 := b.Named("prod", dfg.OpMul, 0, s1, d) // swapped commutative operands
	y1 := b.Named("outB", dfg.OpSub, 0, m1, d)
	y0 := b.Named("outA", dfg.OpAdd, 0, m1, m0) // swapped
	b.Output(y0)
	b.Output(y1)
	return b.Graph()
}

// TestStoreIsomorphicHit is the tentpole property end to end: a renamed,
// reordered, operand-swapped copy of an already-bound kernel must hit
// the store, and the transplanted binding must audit on the new graph.
// The schedule metrics are re-derived, not copied, so they are compared
// against that graph's own cold bind — they must agree exactly, because
// the answer is the same binding either way.
func TestStoreIsomorphicHit(t *testing.T) {
	a, b := buildScaledSum(), buildScaledSumRenamed()
	dp := storeTestDatapath(t)
	st := NewMemoryStore(0)
	var stats CacheStats
	opts := Options{Parallelism: 1, Store: st, Stats: &stats}

	if _, err := Bind(a, dp, opts); err != nil {
		t.Fatal(err)
	}
	if h, m := stats.StoreHits(), stats.StoreMisses(); h != 0 || m != 1 {
		t.Fatalf("after cold bind: hits=%d misses=%d, want 0/1", h, m)
	}

	hit, err := Bind(b, dp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := stats.StoreHits(), stats.StoreMisses(); h != 1 || m != 1 {
		t.Fatalf("isomorphic request missed: hits=%d misses=%d, want 1/1", h, m)
	}
	if hit.Graph != b {
		t.Error("served hit is not expressed on the requesting graph")
	}
	if err := audit.Audit(hit); err != nil {
		t.Errorf("transplanted binding fails audit on the renamed graph: %v", err)
	}

	// The same request without a store must agree on the metrics: the
	// transplanted binding is re-evaluated on the requesting graph, so a
	// hit changes where the answer comes from, never what it costs.
	cold, err := Bind(b, dp, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if hit.L() > cold.L() || hit.Moves() < 0 {
		t.Errorf("served hit (L=%d M=%d) worse than the fresh search (L=%d M=%d)",
			hit.L(), hit.Moves(), cold.L(), cold.Moves())
	}
}

// TestStoreKindSeparation: a B-INIT result must never answer a B-ITER
// request for the same graph and machine, and vice versa.
func TestStoreKindSeparation(t *testing.T) {
	g := KernelMust("ARF")
	dp := storeTestDatapath(t)
	st := NewMemoryStore(0)
	var stats CacheStats
	opts := Options{Parallelism: 1, Store: st, Stats: &stats}

	if _, err := InitialBind(g, dp, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := Bind(g, dp, opts); err != nil {
		t.Fatal(err)
	}
	if h, m := stats.StoreHits(), stats.StoreMisses(); h != 0 || m != 2 {
		t.Errorf("hits=%d misses=%d, want 0 hits/2 misses (kinds must not cross)", h, m)
	}
	if st.Len() != 2 {
		t.Errorf("store holds %d entries, want 2 distinct kinds", st.Len())
	}
}

// TestStorePoisonedEntryEvicted plants a corrupt entry under the exact
// key a request derives; the facade must refuse to serve it (the
// transplant fails audit or shape checks), evict it with a journaled
// tombstone, fall through to a real search, and republish the key.
func TestStorePoisonedEntryEvicted(t *testing.T) {
	g := KernelMust("EWF")
	dp := storeTestDatapath(t)
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var stats CacheStats
	rec := &recorder{}
	opts := Options{Parallelism: 1, Store: st, Stats: &stats, Observer: rec}

	canon, err := store.Canonicalize(g)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := opts.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	key := store.ResultKey(store.KindIter, canon, dp, fp)
	poison := store.Entry{Key: key, Kind: store.KindIter, Binding: make([]int, len(canon.Order)), L: 1, M: 0}
	poison.Binding[0] = 99 // cluster index out of range for any real machine
	if err := st.Put(poison); err != nil {
		t.Fatal(err)
	}

	res, err := Bind(g, dp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := audit.Audit(res); err != nil {
		t.Fatalf("result after poison fallback fails audit: %v", err)
	}
	if e, h, m := stats.StoreEvicts(), stats.StoreHits(), stats.StoreMisses(); e != 1 || h != 0 || m != 1 {
		t.Errorf("evicts=%d hits=%d misses=%d, want 1/0/1", e, h, m)
	}
	if rec.count(obs.EvStoreEvict) != 1 {
		t.Errorf("journal has %d store.evict events, want 1", rec.count(obs.EvStoreEvict))
	}
	// The fresh result was republished under the key, replacing poison.
	ent := st.Get(key)
	if ent == nil {
		t.Fatal("key not republished after poison eviction")
	}
	if ent.Binding[0] == 99 {
		t.Error("poisoned entry still resident")
	}
	st.Close()

	// The eviction was journaled before the republish, so a reopen must
	// replay to the fresh entry, not the poison.
	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ent = re.Get(key)
	if ent == nil {
		t.Fatal("republished entry lost across reopen")
	}
	if ent.Binding[0] == 99 {
		t.Error("poison resurrected by journal replay")
	}
}

// TestStoreDegradedNotPublished: a budget-truncated (degraded) result is
// a valid answer for its own request but must not be frozen into the
// store, where it would cap every future hit's quality.
func TestStoreDegradedNotPublished(t *testing.T) {
	g := KernelMust("EWF")
	dp := storeTestDatapath(t)
	st := NewMemoryStore(0)
	var stats CacheStats
	// Expire the budget at the first B-ITER round: the search holds a
	// complete initial solution by then, so the anytime contract returns
	// it as a degraded result instead of an error.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	opts := Options{Parallelism: 1, Store: st, Stats: &stats,
		Hook: func(point string) {
			if point == bind.HookIterRound {
				once.Do(cancel)
			}
		}}

	res, err := BindContext(ctx, g, dp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("bind under an expired budget did not degrade; the guard is untested")
	}
	if st.Len() != 0 {
		t.Errorf("degraded result was published: store holds %d entries", st.Len())
	}
	if h, m := stats.StoreHits(), stats.StoreMisses(); h != 0 || m != 1 {
		t.Errorf("hits=%d misses=%d, want 0/1", h, m)
	}
}

func ewfLoop() *Loop {
	g := KernelMust("EWF")
	return &Loop{
		Body: g,
		Carried: []CarriedDep{
			{From: g.NodeByName("u1"), To: g.NodeByName("v1"), Distance: 1},
			{From: g.NodeByName("u2"), To: g.NodeByName("v2"), Distance: 1},
			{From: g.NodeByName("u3"), To: g.NodeByName("v3"), Distance: 1},
			{From: g.NodeByName("u4"), To: g.NodeByName("v6"), Distance: 1},
		},
	}
}

// TestModuloPipelineStored: the modulo scheduler behind the store. The
// second request is served from the store with an identical schedule,
// certified by a fresh AuditPipelined pass inside the adoption.
func TestModuloPipelineStored(t *testing.T) {
	dp, err := ParseDatapath("[2,1|2,1]", DatapathConfig{})
	if err != nil {
		t.Fatal(err)
	}
	st := NewMemoryStore(0)
	var stats CacheStats
	rec := &recorder{}
	ctx := context.Background()

	cold, err := ModuloPipelineStored(ctx, ewfLoop(), dp, ModuloOptions{}, st, &stats, rec)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := stats.StoreHits(), stats.StoreMisses(); h != 0 || m != 1 {
		t.Fatalf("after cold pipeline: hits=%d misses=%d, want 0/1", h, m)
	}

	// A fresh Loop over a freshly built body: same computation, new
	// object identities, so the hit goes through canonicalization.
	warm, err := ModuloPipelineStored(ctx, ewfLoop(), dp, ModuloOptions{}, st, &stats, rec)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := stats.StoreHits(), stats.StoreMisses(); h != 1 || m != 1 {
		t.Fatalf("after warm pipeline: hits=%d misses=%d, want 1/1", h, m)
	}
	if warm.II != cold.II || len(warm.Moves) != len(cold.Moves) {
		t.Errorf("served schedule (II=%d moves=%d) != cold (II=%d moves=%d)",
			warm.II, len(warm.Moves), cold.II, len(cold.Moves))
	}
	if err := AuditPipelined(warm, 0); err != nil {
		t.Errorf("served pipelined schedule fails a fresh audit: %v", err)
	}
	if rec.count(obs.EvStoreHit) != 1 || rec.count(obs.EvStoreMiss) != 1 {
		t.Errorf("journal events hit=%d miss=%d, want 1/1",
			rec.count(obs.EvStoreHit), rec.count(obs.EvStoreMiss))
	}

	// A different MaxII cap is a different request: it must miss.
	if _, err := ModuloPipelineStored(ctx, ewfLoop(), dp, ModuloOptions{MaxII: 40}, st, &stats, rec); err != nil {
		t.Fatal(err)
	}
	if m := stats.StoreMisses(); m != 2 {
		t.Errorf("MaxII change did not split the key: misses=%d, want 2", m)
	}
}

// TestStoreOptionSeparation: option knobs that change the answer (the
// cost weights) split the key; cost-only knobs (parallelism) must not.
func TestStoreOptionSeparation(t *testing.T) {
	g := KernelMust("ARF")
	dp := storeTestDatapath(t)
	st := NewMemoryStore(0)
	var stats CacheStats

	if _, err := Bind(g, dp, Options{Parallelism: 1, Store: st, Stats: &stats}); err != nil {
		t.Fatal(err)
	}
	// Different parallelism, same request: results are identical at any
	// setting, so this must hit.
	if _, err := Bind(g, dp, Options{Parallelism: 2, Store: st, Stats: &stats}); err != nil {
		t.Fatal(err)
	}
	if h := stats.StoreHits(); h != 1 {
		t.Errorf("parallelism split the key: hits=%d, want 1", h)
	}
	// Different cost weights: a different question, must miss.
	if _, err := Bind(g, dp, Options{Parallelism: 1, Alpha: 0.9, Beta: 0.2, Gamma: 0.4, Store: st, Stats: &stats}); err != nil {
		t.Fatal(err)
	}
	if m := stats.StoreMisses(); m != 2 {
		t.Errorf("cost weights did not split the key: misses=%d, want 2", m)
	}
}
