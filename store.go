package vliwbind

// The cross-request result store's read and write paths. The store
// itself (internal/store) is deliberately dumb — content-addressed
// bytes with an LRU and a journal — and the trust logic all lives here,
// in the facade, because it needs both sides of the audit dependency:
// internal/audit certifies bind.Results, so the bind package cannot
// consult it, but this package sits above both. The invariant the
// facade enforces is audit-on-read: no stored entry is ever returned to
// a caller without passing a fresh end-to-end audit on the requesting
// graph, so a corrupt journal, a poisoned entry, or a store bug can
// cost at worst a cache miss, never a wrong binding.
//
// Stored entries are expressed in canonical positions (see
// internal/store.Canonicalize), which is what makes the store
// cross-request: a renamed, reordered, but isomorphic kernel computes
// the same canonical form, finds the entry, and transplants the binding
// through its own Order permutation. The entry's recorded L and M are
// advisory only — the list scheduler breaks ties on node IDs, so an
// isomorphic graph may legitimately re-evaluate to slightly different
// numbers — and adoption always re-evaluates and re-audits rather than
// trusting them.

import (
	"context"
	"fmt"
	"sort"

	"vliwbind/internal/audit"
	"vliwbind/internal/bind"
	"vliwbind/internal/modulo"
	"vliwbind/internal/obs"
	"vliwbind/internal/store"
)

// ResultStore is the concurrency-safe cross-request result store:
// hand one to Options.Store to serve repeated (isomorphic) requests
// from audited cache hits instead of full searches. Safe for concurrent
// use by any number of binds; a nil *ResultStore is inert.
type ResultStore = store.Store

// StoreStats reports what opening a journal-backed store found on disk.
type StoreStats = store.OpenStats

// OpenStore opens (creating if needed) a journal-backed result store in
// directory dir. Previously journaled results are replayed into memory;
// corrupt or truncated journal lines are skipped, duplicate keys are
// last-write-wins, and tombstoned entries stay gone. Close it when done
// to flush the journal.
func OpenStore(dir string) (*ResultStore, error) { return store.Open(dir, 0) }

// NewMemoryStore creates a memory-only result store holding at most max
// entries (a default capacity when max <= 0). It serves the same
// audited hits as a journal-backed store but forgets everything when
// the process ends.
func NewMemoryStore(max int) *ResultStore { return store.NewMemory(max) }

// bindThroughStore is the store seam under every facade binder: consult
// the store, serve an audited hit, otherwise run the search and publish
// the result. All store activity is strictly best-effort — any failure
// to canonicalize, fingerprint, adopt, audit, or journal degrades to
// exactly the search that would have run with no store attached.
func bindThroughStore(g *Graph, dp *Datapath, opts Options, kind string, search func() (*Result, error)) (*Result, error) {
	st := opts.Store
	if st == nil {
		return search()
	}
	canon, err := store.Canonicalize(g)
	if err != nil {
		return search() // bound/empty graph: let the binder report it
	}
	fp, err := opts.Fingerprint()
	if err != nil {
		return search() // invalid options: ditto
	}
	key := store.ResultKey(kind, canon, dp, fp)
	if ent := st.Get(key); ent != nil {
		res, reason := adoptBound(g, dp, canon, ent, kind)
		if reason == "" {
			if opts.Stats != nil {
				opts.Stats.RecordStoreHit()
			}
			emitStore(opts.Observer, obs.Event{Type: obs.EvStoreHit, Kernel: g.Name(),
				Key: key.String(), L: res.L(), M: res.Moves()})
			return res, nil
		}
		// The entry failed adoption or audit: it is poison for this key
		// and must never be served again, so the eviction is journaled
		// too. The journal-append error, if any, cannot make the served
		// answer wrong (we fall through to a fresh search either way).
		st.Evict(key)
		if opts.Stats != nil {
			opts.Stats.RecordStoreEvict()
		}
		emitStore(opts.Observer, obs.Event{Type: obs.EvStoreEvict, Kernel: g.Name(),
			Key: key.String(), Err: reason})
	}
	if opts.Stats != nil {
		opts.Stats.RecordStoreMiss()
	}
	emitStore(opts.Observer, obs.Event{Type: obs.EvStoreMiss, Kernel: g.Name(), Key: key.String()})
	res, err := search()
	if err == nil && res != nil && !res.Degraded {
		// Degraded results are valid but not the search's full answer;
		// publishing one would freeze an interrupted search's quality
		// into every future hit, so only complete results are stored.
		ent := store.Entry{Key: key, Kind: kind, L: res.L(), M: res.Moves(),
			Binding: make([]int, len(canon.Order))}
		for k, id := range canon.Order {
			ent.Binding[k] = res.Binding[id]
		}
		st.Put(ent)
	}
	return res, err
}

// adoptBound transplants a stored entry onto the requesting graph and
// certifies it: kind and shape checks, re-evaluation (deriving the
// bound graph and list schedule for *this* graph), then a full
// end-to-end audit. A non-empty reason means the entry must be evicted.
func adoptBound(g *Graph, dp *Datapath, canon *store.Canon, ent *store.Entry, kind string) (*Result, string) {
	if ent.Kind != kind {
		return nil, fmt.Sprintf("stored kind %q, want %q", ent.Kind, kind)
	}
	if len(ent.Binding) != len(canon.Order) {
		return nil, fmt.Sprintf("stored binding has %d ops, graph has %d", len(ent.Binding), len(canon.Order))
	}
	bn := make([]int, len(canon.Order))
	for k, id := range canon.Order {
		c := ent.Binding[k]
		if c < 0 || c >= dp.NumClusters() {
			return nil, fmt.Sprintf("stored cluster %d out of range [0,%d)", c, dp.NumClusters())
		}
		bn[id] = c
	}
	res, err := bind.Evaluate(g, dp, bn)
	if err != nil {
		return nil, "re-evaluation failed: " + err.Error()
	}
	if err := audit.Audit(res); err != nil {
		return nil, "audit failed: " + err.Error()
	}
	return res, ""
}

// emitStore hands a store event to the observer when one is attached.
func emitStore(o Observer, e obs.Event) {
	if o != nil {
		o.Event(e)
	}
}

// ModuloPipelineStored is ModuloPipelineContext behind the result
// store: an isomorphic loop body with the same carried-dependence
// structure, machine, and MaxII is served from the store after passing
// a fresh AuditPipelined certificate, and fresh schedules are published
// for the next request. A nil store, stats, or observer disables that
// aspect; the schedule returned is identical either way.
func ModuloPipelineStored(ctx context.Context, l *Loop, dp *Datapath, opts ModuloOptions,
	st *ResultStore, stats *CacheStats, observer Observer) (*PipelinedSchedule, error) {
	search := func() (*PipelinedSchedule, error) {
		return modulo.PipelineContext(ctx, l, dp, opts)
	}
	if st == nil {
		return search()
	}
	if err := l.Validate(); err != nil {
		return search() // malformed loop: let the scheduler report it
	}
	canon, err := store.Canonicalize(l.Body)
	if err != nil {
		return search()
	}
	key := store.ResultKey(store.KindModulo, canon, dp, moduloExtra(canon, l, opts))
	kernel := l.Body.Name()
	if ent := st.Get(key); ent != nil {
		ps, reason := adoptModulo(l, dp, canon, ent)
		if reason == "" {
			if stats != nil {
				stats.RecordStoreHit()
			}
			emitStore(observer, obs.Event{Type: obs.EvStoreHit, Kernel: kernel,
				Key: key.String(), L: ps.II, M: len(ps.Moves)})
			return ps, nil
		}
		st.Evict(key)
		if stats != nil {
			stats.RecordStoreEvict()
		}
		emitStore(observer, obs.Event{Type: obs.EvStoreEvict, Kernel: kernel,
			Key: key.String(), Err: reason})
	}
	if stats != nil {
		stats.RecordStoreMiss()
	}
	emitStore(observer, obs.Event{Type: obs.EvStoreMiss, Kernel: kernel, Key: key.String()})
	ps, err := search()
	if err == nil && ps != nil {
		n := len(canon.Order)
		ent := store.Entry{Key: key, Kind: store.KindModulo, II: ps.II,
			Start: make([]int, n), Cluster: make([]int, n)}
		for k, id := range canon.Order {
			ent.Start[k] = ps.Start[id]
			ent.Cluster[k] = ps.Cluster[id]
		}
		for _, m := range ps.Moves {
			ent.Moves = append(ent.Moves, [3]int{int(canon.Pos[m.Prod.ID()]), m.Dest, m.Cycle})
		}
		st.Put(ent)
	}
	return ps, err
}

// moduloExtra fingerprints the parts of a modulo request the body graph
// does not capture: the II cap and the carried-dependence structure in
// canonical positions, sorted so declaration order never splits keys.
func moduloExtra(canon *store.Canon, l *Loop, opts ModuloOptions) []byte {
	deps := make([][3]int, 0, len(l.Carried))
	for _, cd := range l.Carried {
		deps = append(deps, [3]int{int(canon.Pos[cd.From.ID()]), int(canon.Pos[cd.To.ID()]), cd.Distance})
	}
	sort.Slice(deps, func(i, j int) bool {
		a, b := deps[i], deps[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
	b := fmt.Appendf(nil, "modopts/v1 maxii=%d", opts.MaxII)
	for _, d := range deps {
		b = fmt.Appendf(b, " %d>%d@%d", d[0], d[1], d[2])
	}
	return b
}

// adoptModulo rebuilds a pipelined schedule from a stored entry for the
// requesting loop and certifies it with a fresh AuditPipelined pass
// (which expands enough concrete iterations to cover the steady state).
func adoptModulo(l *Loop, dp *Datapath, canon *store.Canon, ent *store.Entry) (*PipelinedSchedule, string) {
	if ent.Kind != store.KindModulo {
		return nil, fmt.Sprintf("stored kind %q, want %q", ent.Kind, store.KindModulo)
	}
	n := len(canon.Order)
	if len(ent.Start) != n || len(ent.Cluster) != n {
		return nil, fmt.Sprintf("stored schedule has %d/%d ops, body has %d", len(ent.Start), len(ent.Cluster), n)
	}
	if ent.II < 1 {
		return nil, fmt.Sprintf("stored II %d out of range", ent.II)
	}
	ps := &PipelinedSchedule{Loop: l, Datapath: dp, II: ent.II,
		Start: make([]int, n), Cluster: make([]int, n)}
	for k, id := range canon.Order {
		if s := ent.Start[k]; s < 0 {
			return nil, fmt.Sprintf("stored start cycle %d out of range", s)
		}
		if c := ent.Cluster[k]; c < 0 || c >= dp.NumClusters() {
			return nil, fmt.Sprintf("stored cluster %d out of range [0,%d)", c, dp.NumClusters())
		}
		ps.Start[id] = ent.Start[k]
		ps.Cluster[id] = ent.Cluster[k]
	}
	for _, m := range ent.Moves {
		p, dest, cycle := m[0], m[1], m[2]
		if p < 0 || p >= n {
			return nil, fmt.Sprintf("stored move producer %d out of range", p)
		}
		ps.Moves = append(ps.Moves, modulo.MoveSlot{Prod: l.Body.Node(int(canon.Order[p])), Dest: dest, Cycle: cycle})
	}
	if err := audit.AuditPipelined(ps, 0); err != nil {
		return nil, "audit failed: " + err.Error()
	}
	return ps, ""
}
