// Package vliwbind is a library for binding dataflow-graph operations to
// the clusters of a clustered VLIW datapath, reproducing the algorithm of
// V. S. Lapinskii, M. F. Jacome and G. A. de Veciana, "High-Quality
// Operation Binding for Clustered VLIW Datapaths", DAC 2001.
//
// The package is a facade over the implementation packages; it exposes
// everything a downstream user needs:
//
//   - building dataflow graphs programmatically (NewGraph / Builder) or
//     parsing them from the .dfg text format (ParseGraph);
//   - describing clustered datapaths in the paper's [alus,muls|…]
//     notation (ParseDatapath) with configurable bus count and latencies;
//   - the two-phase binding algorithm: InitialBind (the fast greedy
//     B-INIT driver) and Bind (B-INIT followed by the B-ITER boundary
//     perturbation improvement) — plus the PCC baseline (BindPCC) the
//     paper compares against and an exact small-graph binder (Optimal);
//   - schedule inspection (Gantt, CheckSchedule), cycle-accurate
//     execution on concrete values (Execute, VerifySchedule),
//     register-pressure reporting (RegisterPressure) and end-to-end
//     invariant auditing (AuditResult, AuditSchedule, AuditAllocation,
//     AuditPipelined);
//   - the paper's benchmark kernels (Kernels, KernelByName) and both
//     experiment tables (Table1, Table2, RunExperiment).
//
// Quickstart:
//
//	g := vliwbind.KernelMust("EWF")
//	dp, _ := vliwbind.ParseDatapath("[2,1|1,1]", vliwbind.DatapathConfig{})
//	res, _ := vliwbind.Bind(g, dp, vliwbind.Options{})
//	fmt.Println(res.L(), res.Moves())
//	fmt.Print(vliwbind.Gantt(res.Schedule))
package vliwbind

import (
	"context"
	"io"
	"time"

	"vliwbind/internal/anneal"
	"vliwbind/internal/audit"
	"vliwbind/internal/bind"
	"vliwbind/internal/codegen"
	"vliwbind/internal/dfg"
	"vliwbind/internal/expt"
	"vliwbind/internal/kernels"
	"vliwbind/internal/machine"
	"vliwbind/internal/mincut"
	"vliwbind/internal/modulo"
	"vliwbind/internal/obs"
	"vliwbind/internal/optbind"
	"vliwbind/internal/pcc"
	"vliwbind/internal/regpressure"
	"vliwbind/internal/sched"
	"vliwbind/internal/store"
	"vliwbind/internal/textio"
	"vliwbind/internal/vliwsim"
)

// Dataflow model.
type (
	// Graph is a dataflow graph (original or bound form).
	Graph = dfg.Graph
	// Node is one operation in a graph.
	Node = dfg.Node
	// Value is an operand: a node result or an external input.
	Value = dfg.Value
	// Builder constructs graphs incrementally.
	Builder = dfg.Builder
	// OpType enumerates operation types (OpAdd, OpMul, …).
	OpType = dfg.OpType
	// FUType enumerates functional-unit types (FUALU, FUMul, FUBus).
	FUType = dfg.FUType
	// GraphStats summarizes a graph (N_V, N_CC, L_CP, …).
	GraphStats = dfg.Stats
)

// Operation and FU type constants re-exported from the dataflow model.
const (
	OpAdd    = dfg.OpAdd
	OpSub    = dfg.OpSub
	OpNeg    = dfg.OpNeg
	OpMul    = dfg.OpMul
	OpMulImm = dfg.OpMulImm
	OpMove   = dfg.OpMove

	FUALU = dfg.FUALU
	FUMul = dfg.FUMul
	FUBus = dfg.FUBus
)

// NewGraph starts building a graph with the given name.
func NewGraph(name string) *Builder { return dfg.NewBuilder(name) }

// ParseGraph reads a graph in the .dfg text format.
func ParseGraph(r io.Reader) (*Graph, error) { return textio.Parse(r) }

// ParseGraphString parses a graph from a string.
func ParseGraphString(s string) (*Graph, error) { return textio.ParseString(s) }

// PrintGraph writes a graph in the .dfg text format.
func PrintGraph(w io.Writer, g *Graph) error { return textio.Print(w, g) }

// GraphDot renders a graph in Graphviz DOT form; binding is optional
// (node-ID-indexed clusters) and groups nodes into DOT clusters.
func GraphDot(g *Graph, binding []int) string { return dfg.Dot(g, binding) }

// ValidateGraph checks a graph's structural invariants.
func ValidateGraph(g *Graph) error { return dfg.Validate(g) }

// EvalGraph computes every node's value for concrete inputs (reference
// semantics).
func EvalGraph(g *Graph, inputs []float64) ([]float64, error) { return dfg.Eval(g, inputs) }

// Datapath model.
type (
	// Datapath is a clustered VLIW machine.
	Datapath = machine.Datapath
	// DatapathConfig selects bus count and resource timing; the zero
	// value is the paper's Table 1 machine (2 buses, unit latencies).
	DatapathConfig = machine.Config
	// Cluster gives per-cluster functional-unit counts.
	Cluster = machine.Cluster
	// ResourceSpec is a (latency, data-introduction interval) pair.
	ResourceSpec = machine.ResourceSpec
)

// Interconnect topology names accepted by DatapathConfig.Topology and
// the spec notation's "@" directive.
const (
	TopoBus  = machine.TopoBus
	TopoP2P  = machine.TopoP2P
	TopoRing = machine.TopoRing
	TopoNone = machine.TopoNone
)

// ParseDatapath builds a datapath from the paper's cluster notation,
// e.g. "[2,1|1,1]". The notation also selects a topology:
// "[1,1|1,1|1,1]@ring:1" is a three-cluster ring with one channel per
// link. Datapath.SpecString round-trips the full configuration.
func ParseDatapath(spec string, cfg DatapathConfig) (*Datapath, error) {
	return machine.Parse(spec, cfg)
}

// ParseDatapathSpec builds a datapath from a self-contained spec string
// (cluster notation plus optional "@topology:linkcap" directive) with
// default timing — the inverse of Datapath.SpecString.
func ParseDatapathSpec(spec string) (*Datapath, error) { return machine.ParseSpec(spec) }

// NewDatapath builds a datapath from explicit cluster descriptions.
func NewDatapath(clusters []Cluster, cfg DatapathConfig) (*Datapath, error) {
	return machine.New(clusters, cfg)
}

// Binding algorithms.
type (
	// Options tunes the two binding phases; the zero value reproduces
	// the paper's published configuration (α=β=1, γ=1.1, L_PR sweep,
	// both directions, pairs, plateau escape).
	Options = bind.Options
	// Result is a complete binding solution with its schedule.
	Result = bind.Result
	// PCCOptions tunes the PCC baseline.
	PCCOptions = pcc.Options
	// Quality is a lexicographic quality vector (Q_U / Q_M).
	Quality = bind.Quality
	// CacheStats exposes hit/miss counters of the schedule-evaluation
	// memoization cache; hand one to Options.Stats. The cache (and the
	// evaluation worker pool) activate when Options.Parallelism resolves
	// to more than 1; results are bit-identical at any setting.
	CacheStats = bind.CacheStats
)

// Observability. The obs layer is strictly passive: attaching any sink
// through Options.Observer (or PCCOptions.Observer / AnnealOptions.
// Observer) leaves every binder's result bit-identical; it only records
// what the search did. See DESIGN.md §11 for the event schema.
type (
	// Observer consumes observability events; implementations must be
	// safe for concurrent use (events fire from worker-pool goroutines).
	Observer = obs.Observer
	// TraceEvent is one observability record (the JSONL journal writes
	// one per line).
	TraceEvent = obs.Event
	// TraceJournal is the JSONL event sink.
	TraceJournal = obs.Journal
	// Metrics accumulates per-phase monotonic timers and event counters,
	// with a text Dump and an in-process Snapshot API.
	Metrics = obs.Metrics
	// MetricsSnapshot is a point-in-time copy of a Metrics instance.
	MetricsSnapshot = obs.Snapshot
	// Explain collects B-INIT icost breakdowns and B-ITER move
	// before/after quality vectors and renders them as a report.
	Explain = obs.Explain
)

// NewTraceJournal starts a JSONL journal writing to w; pass it as an
// Observer and call Flush when the run ends.
func NewTraceJournal(w io.Writer) *TraceJournal { return obs.NewJournal(w) }

// NewMetrics returns an empty metrics accumulator usable both directly
// and as an Observer.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// NewExplain returns an empty explain-mode collector.
func NewExplain() *Explain { return obs.NewExplain() }

// MultiObserver fans events out to several sinks, dropping nils; it
// returns nil when no sink remains.
func MultiObserver(sinks ...Observer) Observer { return obs.Multi(sinks...) }

// Bind runs the full two-phase algorithm (B-INIT driver + B-ITER).
// With Options.Store attached, an isomorphic request seen before is
// served from the store after passing a fresh end-to-end audit, and a
// completed search publishes its result for the next request.
func Bind(g *Graph, dp *Datapath, opts Options) (*Result, error) {
	return bindThroughStore(g, dp, opts, store.KindIter, func() (*Result, error) {
		return bind.Bind(g, dp, opts)
	})
}

// InitialBind runs only the phase-one driver (B-INIT), the paper's fast
// variant for compilation-time-critical use. Options.Store works as in
// Bind; B-INIT and B-ITER results never answer each other's requests.
func InitialBind(g *Graph, dp *Datapath, opts Options) (*Result, error) {
	return bindThroughStore(g, dp, opts, store.KindInit, func() (*Result, error) {
		return bind.Initial(g, dp, opts)
	})
}

// ImproveBind runs the B-ITER improvement phase on an existing solution.
func ImproveBind(res *Result, opts Options) (*Result, error) { return bind.Improve(res, opts) }

// EvaluateBinding derives the bound graph for an explicit cluster
// assignment and list-schedules it.
func EvaluateBinding(g *Graph, dp *Datapath, binding []int) (*Result, error) {
	return bind.Evaluate(g, dp, binding)
}

// BindPCC runs the Partial Component Clustering baseline (Desoli,
// HPL-98-13) the paper compares against.
func BindPCC(g *Graph, dp *Datapath, opts PCCOptions) (*Result, error) {
	return pcc.Bind(g, dp, opts)
}

// Optimal exhaustively finds the best binding of a small graph
// (branch-and-bound; guarded by maxOps, default 16).
func Optimal(g *Graph, dp *Datapath, maxOps int) (*Result, error) {
	return optbind.Optimal(g, dp, maxOps)
}

// Anytime (context-aware) binding.
//
// Every binder has a context variant that makes it an anytime algorithm:
// a cancellation or deadline that lands after the binder has certified
// at least one complete candidate returns the best solution found so
// far, tagged Result.Degraded with the cause in Result.Budget, instead
// of an error; a cancellation before the first complete candidate
// returns an error wrapping context.Cause. The facade audits every
// degraded result before releasing it, so a degraded binding carries
// the same end-to-end certificate a complete one does. Uncancelled runs
// are bit-identical to the plain variants.

// auditDegraded certifies a budget-degraded result before it leaves the
// facade: degradation is about how far the search got, never about the
// legality of the binding, and auditing enforces exactly that. Complete
// results pass through untouched — their certification lives in the
// test and experiment layers, as before.
func auditDegraded(res *Result, err error) (*Result, error) {
	if err != nil || res == nil || !res.Degraded {
		return res, err
	}
	if aerr := audit.Audit(res); aerr != nil {
		return nil, aerr
	}
	return res, nil
}

// BindContext is Bind as an anytime algorithm: once the B-INIT driver
// sweep completes, its best candidate is the floor, and interrupting
// B-ITER at any point returns an audited binding no worse than plain
// B-INIT's (L, moves) on the same input.
func BindContext(ctx context.Context, g *Graph, dp *Datapath, opts Options) (*Result, error) {
	return bindThroughStore(g, dp, opts, store.KindIter, func() (*Result, error) {
		return auditDegraded(bind.BindContext(ctx, g, dp, opts))
	})
}

// InitialBindContext is InitialBind under a context. The driver sweep
// mints the anytime floor, so it is all-or-nothing: cancellation before
// it completes returns an error wrapping context.Cause.
func InitialBindContext(ctx context.Context, g *Graph, dp *Datapath, opts Options) (*Result, error) {
	return bindThroughStore(g, dp, opts, store.KindInit, func() (*Result, error) {
		return auditDegraded(bind.InitialContext(ctx, g, dp, opts))
	})
}

// ImproveBindContext is ImproveBind as an anytime algorithm: the input
// result is the floor and the returned binding is never worse than it.
func ImproveBindContext(ctx context.Context, res *Result, opts Options) (*Result, error) {
	return auditDegraded(bind.ImproveContext(ctx, res, opts))
}

// BindPCCContext is BindPCC under a context; cancellation after the
// first decomposition has been evaluated degrades to the best-so-far.
func BindPCCContext(ctx context.Context, g *Graph, dp *Datapath, opts PCCOptions) (*Result, error) {
	return auditDegraded(pcc.BindContext(ctx, g, dp, opts))
}

// BindAnnealContext is BindAnneal under a context; cancellation after
// the initial partitioning degrades to the best binding observed.
func BindAnnealContext(ctx context.Context, g *Graph, dp *Datapath, opts AnnealOptions) (*Result, error) {
	return auditDegraded(anneal.BindContext(ctx, g, dp, opts))
}

// BindMinCutContext is BindMinCut under a context; cancellation after
// the initial partition degrades to the current partition.
func BindMinCutContext(ctx context.Context, g *Graph, dp *Datapath, opts MinCutOptions) (*Result, error) {
	return auditDegraded(mincut.BindContext(ctx, g, dp, opts))
}

// OptimalContext is Optimal under a context: a cancelled search holding
// an incumbent returns it Degraded (valid, just not proven optimal).
func OptimalContext(ctx context.Context, g *Graph, dp *Datapath, maxOps int) (*Result, error) {
	return auditDegraded(optbind.OptimalContext(ctx, g, dp, maxOps))
}

// LatencyLowerBound returns a latency no binding of g on dp can beat.
func LatencyLowerBound(g *Graph, dp *Datapath) int { return optbind.LowerBound(g, dp) }

// Schedules and execution.
type (
	// Schedule is a resource-legal cycle assignment of a bound graph.
	Schedule = sched.Schedule
	// Trace is the issue log of a cycle-accurate execution.
	Trace = vliwsim.Trace
	// PressureReport is a per-cluster register-pressure summary.
	PressureReport = regpressure.Report
)

// ListSchedule runs the cluster-aware list scheduler directly.
func ListSchedule(g *Graph, dp *Datapath, binding []int) (*Schedule, error) {
	return sched.List(g, dp, binding)
}

// CheckSchedule verifies dependence and resource legality.
func CheckSchedule(s *Schedule) error { return sched.Check(s) }

// Gantt renders a schedule as a per-resource text chart.
func Gantt(s *Schedule) string { return sched.Gantt(s) }

// Execute runs a schedule cycle-accurately on concrete inputs.
func Execute(s *Schedule, inputs []float64) ([]float64, *Trace, error) {
	return vliwsim.Execute(s, inputs)
}

// VerifySchedule executes a schedule and checks its outputs against the
// reference dataflow evaluation.
func VerifySchedule(s *Schedule, inputs []float64) error { return vliwsim.Verify(s, inputs) }

// RegisterPressure reports per-cluster live-value demand.
func RegisterPressure(s *Schedule) *PressureReport { return regpressure.Analyze(s) }

// AuditResult cross-checks a binding result end to end: binding
// validity, canonical transfer insertion, dependence and per-unit
// resource legality, cycle-accurate simulation against the reference
// evaluation, and clobber-free register allocatability. It is
// deliberately redundant with the binders' own invariants — the point
// is an independent certificate.
func AuditResult(res *Result) error { return audit.Audit(res) }

// AuditSchedule certifies a schedule alone: legality (CheckSchedule),
// a tight makespan claim, and bitwise simulation agreement with the
// reference dataflow evaluation on probe inputs.
func AuditSchedule(s *Schedule) error { return audit.AuditSchedule(s) }

// AuditAllocation certifies a register allocation: every value maps to
// a real register of its cluster and a full replay finds no clobber of
// a live value.
func AuditAllocation(s *Schedule, a *RegAlloc) error { return audit.AuditAlloc(s, a) }

// AuditPipelined certifies a modulo schedule: move slots reference real
// producers on real cycles and clusters, and the expansion over
// concrete iterations (ModuloCheck) is dependence- and resource-legal.
func AuditPipelined(ps *PipelinedSchedule, iterations int) error {
	return audit.AuditPipelined(ps, iterations)
}

// Benchmarks and experiments.
type (
	// Kernel is a named benchmark DFG generator with its paper stats.
	Kernel = kernels.Kernel
	// RandomGraphConfig parameterizes the synthetic DFG generator.
	RandomGraphConfig = kernels.RandomConfig
	// ExperimentRow is one row of the paper's Table 1 or Table 2.
	ExperimentRow = expt.Row
	// Measurement is the measured outcome of an experiment row.
	Measurement = expt.Measurement
	// LM is a (latency, moves) result pair, the unit the paper reports.
	LM = expt.LM
)

// Kernels returns the paper's benchmark suite (Table 1 order).
func Kernels() []Kernel { return kernels.All() }

// KernelByName looks a benchmark up by its table name.
func KernelByName(name string) (Kernel, error) { return kernels.ByName(name) }

// KernelMust builds a benchmark graph by name, panicking on unknown
// names; convenient in examples and tests.
func KernelMust(name string) *Graph {
	k, err := kernels.ByName(name)
	if err != nil {
		panic(err)
	}
	return k.Build()
}

// RandomGraph generates a deterministic pseudo-random DAG.
func RandomGraph(cfg RandomGraphConfig) *Graph { return kernels.Random(cfg) }

// Table1 returns the paper's Table 1 experiment rows with published
// reference values.
func Table1() []ExperimentRow { return expt.Table1() }

// Table2 returns the paper's Table 2 rows (FFT bus/latency sweep).
func Table2() []ExperimentRow { return expt.Table2() }

// RunExperiment measures PCC, B-INIT and B-ITER on one row.
func RunExperiment(r ExperimentRow) (Measurement, error) { return expt.Run(r) }

// RunExperimentWith is RunExperiment with explicit binding options —
// most usefully Options.Parallelism. Measured (L, M) values are
// identical at any parallelism; only the times change.
func RunExperimentWith(r ExperimentRow, opts Options) (Measurement, error) {
	return expt.RunWith(r, opts)
}

// RunExperimentBudgeted measures a row with all three algorithms under
// one shared per-row time budget: an algorithm whose budget expires
// contributes its audited best-so-far (L, M) with the matching
// Measurement Degraded flag set (zero LM when it never certified a
// candidate). budget <= 0 applies no deadline beyond ctx's own.
func RunExperimentBudgeted(ctx context.Context, r ExperimentRow, opts Options, budget time.Duration) (Measurement, error) {
	return expt.RunBudgeted(ctx, r, opts, budget)
}

// FormatMeasurements renders measurements in the paper's table layout.
func FormatMeasurements(ms []Measurement) string { return expt.Format(ms) }

// FormatMeasurementsMarkdown renders measurements as the Markdown table
// used in EXPERIMENTS.md.
func FormatMeasurementsMarkdown(ms []Measurement) string { return expt.FormatMarkdown(ms) }

// BaselineMeasurement is a five-binder comparison outcome on one row.
type BaselineMeasurement = expt.BaselineMeasurement

// BaselineRows returns the homogeneous-machine rows used for the
// five-binder comparison (B-ITER, PCC, annealing, min-cut).
func BaselineRows() []ExperimentRow { return expt.BaselineRows() }

// RunBaselineExperiment measures all implemented binders on one row.
func RunBaselineExperiment(r ExperimentRow) (BaselineMeasurement, error) {
	return expt.RunBaselines(r)
}

// FormatBaselines renders the five-binder comparison table.
func FormatBaselines(ms []BaselineMeasurement) string { return expt.FormatBaselines(ms) }

// TopologyMeasurement compares B-ITER across interconnect topologies
// (shared bus, ring, point-to-point) on one kernel.
type TopologyMeasurement = expt.TopologyMeasurement

// TopologyKernels lists the benchmarks of the topology comparison.
func TopologyKernels() []string { return expt.TopologyKernels() }

// RunTopologyComparison measures one kernel across the three topologies.
func RunTopologyComparison(kernel string) (TopologyMeasurement, error) {
	return expt.RunTopologyComparison(kernel)
}

// FormatTopologies renders the topology comparison table.
func FormatTopologies(ms []TopologyMeasurement) string { return expt.FormatTopologies(ms) }

// Additional baselines and extensions.
type (
	// AnnealOptions tunes the simulated-annealing baseline (Leupers,
	// PACT 2000).
	AnnealOptions = anneal.Options
	// MinCutOptions tunes the network-partitioning baseline (Capitanio
	// et al., MICRO-25).
	MinCutOptions = mincut.Options
	// RegAlloc is a per-cluster register assignment for a schedule.
	RegAlloc = codegen.Alloc
	// Loop is a loop body plus loop-carried dependences for modulo
	// scheduling.
	Loop = modulo.Loop
	// CarriedDep is a loop-carried dependence with iteration distance.
	CarriedDep = modulo.CarriedDep
	// PipelinedSchedule is a modulo (software-pipelined) schedule.
	PipelinedSchedule = modulo.PipelinedSchedule
	// ModuloOptions tunes the modulo scheduler.
	ModuloOptions = modulo.Options
)

// BindAnneal runs the simulated-annealing binding baseline.
func BindAnneal(g *Graph, dp *Datapath, opts AnnealOptions) (*Result, error) {
	return anneal.Bind(g, dp, opts)
}

// BindMinCut runs the balanced min-cut partitioning baseline; it requires
// homogeneous clusters, as the original method does.
func BindMinCut(g *Graph, dp *Datapath, opts MinCutOptions) (*Result, error) {
	return mincut.Bind(g, dp, opts)
}

// CutSize counts the inter-cluster dependence edges of a binding.
func CutSize(g *Graph, binding []int) int { return mincut.CutSize(g, binding) }

// AllocateRegisters maps every value copy in a schedule to a physical
// register of its cluster by linear scan. maxRegs bounds each register
// file (0 = unbounded); an error reports the demand when it doesn't fit.
func AllocateRegisters(s *Schedule, maxRegs int) (*RegAlloc, error) {
	return codegen.Allocate(s, maxRegs)
}

// CheckRegisters verifies an allocation never clobbers a live value.
func CheckRegisters(s *Schedule, a *RegAlloc) error { return codegen.CheckAlloc(s, a) }

// EmitAssembly renders a schedule plus register allocation as symbolic
// clustered-VLIW assembly (one instruction word per cycle).
func EmitAssembly(s *Schedule, a *RegAlloc) string { return codegen.Emit(s, a) }

// ModuloMII returns the initiation-interval lower bound
// max(ResMII, RecMII) for a loop on a datapath.
func ModuloMII(l *Loop, dp *Datapath) int { return modulo.MII(l, dp) }

// ModuloPipeline software-pipelines a loop onto the clustered datapath.
func ModuloPipeline(l *Loop, dp *Datapath, opts ModuloOptions) (*PipelinedSchedule, error) {
	return modulo.Pipeline(l, dp, opts)
}

// ModuloPipelineContext is ModuloPipeline under a context. A modulo
// schedule has no useful partial form, so cancellation always returns
// an error wrapping context.Cause.
func ModuloPipelineContext(ctx context.Context, l *Loop, dp *Datapath, opts ModuloOptions) (*PipelinedSchedule, error) {
	return modulo.PipelineContext(ctx, l, dp, opts)
}

// ModuloCheck expands a pipelined schedule over concrete iterations and
// verifies every dependence and resource constraint.
func ModuloCheck(ps *PipelinedSchedule, iterations int) error {
	return modulo.Check(ps, iterations)
}

// DatapathPresets lists the named machine presets (TI C6201, Lx, the
// paper's Table 1/Table 2 machines).
func DatapathPresets() []string { return machine.Presets() }

// NewDatapathPreset builds a named preset machine.
func NewDatapathPreset(name string) (*Datapath, error) { return machine.NewPreset(name) }

// SpillResult is a register-file-feasible solution produced by
// BindWithSpills, with the inserted spill count and the pre-spill latency
// for cost accounting.
type SpillResult = codegen.SpillResult

// BindWithSpills takes a binding and makes it fit register files of
// maxRegs entries per cluster by inserting spill stores and late reloads
// through each cluster's local memory port, rescheduling after each spill
// — the "carefully selected" spills Section 2 of the paper defers.
func BindWithSpills(g *Graph, dp *Datapath, binding []int, maxRegs int) (*SpillResult, error) {
	return codegen.SpillRebind(g, dp, binding, maxRegs)
}
