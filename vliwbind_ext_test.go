package vliwbind

import (
	"strings"
	"testing"
)

func TestFacadeBaselineBinders(t *testing.T) {
	g := KernelMust("ARF")
	dp, _ := ParseDatapath("[1,1|1,1]", DatapathConfig{})
	sa, err := BindAnneal(g, dp, AnnealOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := BindMinCut(g, dp, MinCutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sa.L() < 8 || mc.L() < 8 {
		t.Errorf("baselines beat the critical path: %d, %d", sa.L(), mc.L())
	}
	if cut := CutSize(g, mc.Binding); cut < 0 {
		t.Errorf("CutSize = %d", cut)
	}
}

func TestFacadeCodegen(t *testing.T) {
	g := KernelMust("ARF")
	dp, _ := ParseDatapath("[2,1|2,1]", DatapathConfig{})
	res, err := InitialBind(g, dp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := AllocateRegisters(res.Schedule, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckRegisters(res.Schedule, a); err != nil {
		t.Fatal(err)
	}
	asm := EmitAssembly(res.Schedule, a)
	if !strings.Contains(asm, "MULI") {
		t.Errorf("assembly missing ops:\n%s", asm)
	}
}

func TestFacadeModulo(t *testing.T) {
	b := NewGraph("loop")
	x := b.Input("x")
	prev := b.Input("prev")
	s := b.MulImm(prev, 0.25)
	y := b.Add(s, x)
	b.Output(y)
	g := b.Graph()
	loop := &Loop{
		Body: g,
		Carried: []CarriedDep{
			{From: y.Node(), To: s.Node(), Distance: 1},
		},
	}
	dp, _ := ParseDatapath("[1,1|1,1]", DatapathConfig{})
	if mii := ModuloMII(loop, dp); mii != 2 {
		t.Errorf("MII = %d, want 2", mii)
	}
	ps, err := ModuloPipeline(loop, dp, ModuloOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ModuloCheck(ps, 4); err != nil {
		t.Error(err)
	}
}

func TestFacadePresets(t *testing.T) {
	if len(DatapathPresets()) < 4 {
		t.Errorf("presets: %v", DatapathPresets())
	}
	dp, err := NewDatapathPreset("ti-c6201")
	if err != nil {
		t.Fatal(err)
	}
	if dp.NumClusters() != 2 {
		t.Errorf("C6201 clusters = %d", dp.NumClusters())
	}
	if _, err := NewDatapathPreset("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestFacadeMiscPlumbing(t *testing.T) {
	// ParseGraph from a reader.
	g, err := ParseGraph(strings.NewReader("dfg r\nin x\nop a neg x\nout a\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumOps() != 1 {
		t.Errorf("ops = %d", g.NumOps())
	}
	// NewDatapath from explicit clusters.
	var c Cluster
	c.NumFU[FUALU] = 2
	c.NumFU[FUMul] = 1
	dp, err := NewDatapath([]Cluster{c, c}, DatapathConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if dp.String() != "[2,1|2,1]" {
		t.Errorf("NewDatapath = %s", dp)
	}
}
