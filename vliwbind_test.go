package vliwbind

import (
	"strings"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	g := KernelMust("EWF")
	dp, err := ParseDatapath("[2,1|1,1]", DatapathConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Bind(g, dp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.L() < 14 {
		t.Errorf("EWF latency %d below critical path 14", res.L())
	}
	if err := CheckSchedule(res.Schedule); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
	chart := Gantt(res.Schedule)
	if !strings.Contains(chart, "c0.alu0") {
		t.Errorf("Gantt missing resource rows:\n%s", chart)
	}
	in := make([]float64, g.NumInputs())
	for i := range in {
		in[i] = float64(i)
	}
	if err := VerifySchedule(res.Schedule, in); err != nil {
		t.Errorf("execution diverged: %v", err)
	}
	if p := RegisterPressure(res.Schedule); p.Peak <= 0 {
		t.Error("register pressure report empty")
	}
	if err := AuditResult(res); err != nil {
		t.Errorf("result failed audit: %v", err)
	}
}

// TestFacadeAuditWrappers exercises every audit entry point through the
// facade: whole results, bare schedules, register allocations, and
// pipelined schedules.
func TestFacadeAuditWrappers(t *testing.T) {
	g := KernelMust("ARF")
	dp, err := ParseDatapath("[1,1|1,1]", DatapathConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := InitialBind(g, dp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := AuditResult(res); err != nil {
		t.Errorf("AuditResult: %v", err)
	}
	if err := AuditSchedule(res.Schedule); err != nil {
		t.Errorf("AuditSchedule: %v", err)
	}
	a, err := AllocateRegisters(res.Schedule, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := AuditAllocation(res.Schedule, a); err != nil {
		t.Errorf("AuditAllocation: %v", err)
	}

	lb := NewGraph("iir")
	x, p := lb.Input("x"), lb.Input("p")
	s := lb.MulImm(p, 0.5)
	y := lb.Add(s, x)
	lb.Output(y)
	body := lb.Graph()
	loop := &Loop{Body: body, Carried: []CarriedDep{
		{From: body.Nodes()[1], To: body.Nodes()[0], Distance: 1},
	}}
	ps, err := ModuloPipeline(loop, dp, ModuloOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := AuditPipelined(ps, 4); err != nil {
		t.Errorf("AuditPipelined: %v", err)
	}
}

func TestFacadeBuilderAndTextFormat(t *testing.T) {
	b := NewGraph("demo")
	x, y := b.Input("x"), b.Input("y")
	v := b.Add(x, y)
	w := b.MulImm(v, 0.5)
	b.Output(w)
	g := b.Graph()
	if err := ValidateGraph(g); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := PrintGraph(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ParseGraphString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	vals, err := EvalGraph(g2, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if vals[g2.NodeByName(g.Nodes()[1].Name()).ID()] != 4 {
		t.Errorf("eval through facade wrong: %v", vals)
	}
	if !strings.Contains(GraphDot(g, nil), "digraph") {
		t.Error("GraphDot broken")
	}
}

func TestFacadeBaselinesAndBounds(t *testing.T) {
	g := RandomGraph(RandomGraphConfig{Ops: 10, Seed: 42})
	dp, _ := ParseDatapath("[1,1|1,1]", DatapathConfig{})
	p, err := BindPCC(g, dp, PCCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	o, err := Optimal(g, dp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.L() < o.L() {
		t.Errorf("PCC (%d) beats optimal (%d)", p.L(), o.L())
	}
	if lb := LatencyLowerBound(g, dp); o.L() < lb {
		t.Errorf("optimal (%d) beats lower bound (%d)", o.L(), lb)
	}
	ini, err := InitialBind(g, dp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	imp, err := ImproveBind(ini, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if imp.L() > ini.L() {
		t.Error("ImproveBind worsened the solution")
	}
}

func TestFacadeExperimentPlumbing(t *testing.T) {
	if len(Table1()) != 33 || len(Table2()) != 4 {
		t.Fatalf("table sizes %d/%d", len(Table1()), len(Table2()))
	}
	m, err := RunExperiment(Table1()[31]) // ARF [1,1|1,1], small and fast
	if err != nil {
		t.Fatal(err)
	}
	out := FormatMeasurements([]Measurement{m})
	if !strings.Contains(out, "ARF") {
		t.Errorf("formatted table missing benchmark name:\n%s", out)
	}
	if len(Kernels()) != 7 {
		t.Errorf("kernel suite size %d, want 7", len(Kernels()))
	}
	if _, err := KernelByName("EWF"); err != nil {
		t.Error(err)
	}
}

func TestFacadeEvaluateBindingAndListSchedule(t *testing.T) {
	b := NewGraph("g")
	x, y := b.Input("x"), b.Input("y")
	v := b.Add(x, y)
	w := b.Mul(v, y)
	b.Output(w)
	g := b.Graph()
	dp, _ := ParseDatapath("[1,1|1,1]", DatapathConfig{})
	res, err := EvaluateBinding(g, dp, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves() != 1 {
		t.Errorf("moves = %d, want 1", res.Moves())
	}
	s, err := ListSchedule(res.Bound, dp, res.BoundBinding)
	if err != nil {
		t.Fatal(err)
	}
	if s.L != res.L() {
		t.Errorf("direct scheduling disagrees: %d vs %d", s.L, res.L())
	}
	out, _, err := Execute(s, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 15 {
		t.Errorf("Execute = %v, want [15]", out)
	}
}

func TestKernelMustPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("KernelMust on unknown name did not panic")
		}
	}()
	KernelMust("nope")
}
